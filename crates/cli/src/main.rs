//! `glmia` — command-line front end for the gossip-learning / MIA lab.
//!
//! ```text
//! glmia run      --dataset cifar10 --protocol samo --dynamic --k 5 ...
//! glmia run      --preset quick --trace out/trace
//! glmia sweep    scenarios/threat_matrix.toml --out sweeps/threat --workers 4
//! glmia analyze  out/trace --format md
//! glmia lambda2  --k 2 --nodes 150 --iterations 15 --runs 10 --dynamic
//! glmia attack   --dataset purchase100 --epochs 100
//! glmia topo     --nodes 24 --k 4
//! ```
//!
//! Exit codes: `0` success, `1` runtime failure or bad option value,
//! `2` usage error (unknown subcommand/option, malformed syntax) or
//! corrupt trace input.

mod args;
mod commands;

use std::process::ExitCode;

use args::{ArgError, Args, CliError};

/// With `--features telemetry-alloc`, every allocation in the binary flows
/// through the counting allocator so `--telemetry` runs report heap
/// traffic in `profile.json`. The default build keeps the system allocator
/// untouched.
#[cfg(feature = "telemetry-alloc")]
#[global_allocator]
static ALLOC: glmia_telemetry::CountingAllocator = glmia_telemetry::CountingAllocator;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(argv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n");
            print_usage();
            return ExitCode::from(CliError::from(e).exit_code());
        }
    };
    let outcome = match parsed.subcommand() {
        Some("run") => commands::run(&parsed),
        Some("sweep") => commands::sweep(&parsed),
        Some("analyze") => commands::analyze(&parsed),
        Some("compare") => commands::compare(&parsed),
        Some("lambda2") => commands::lambda2(&parsed),
        Some("attack") => commands::attack(&parsed),
        Some("topo") => commands::topo(&parsed),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(CliError::from(ArgError::UnknownSubcommand(
            other.to_string(),
        ))),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

fn print_usage() {
    println!(
        "glmia — gossip learning & membership-inference-attack laboratory

USAGE:
    glmia <SUBCOMMAND> [--key value]...

SUBCOMMANDS:
    run       run a gossip-learning experiment and report per-round
              accuracy / MIA vulnerability / generalization error
              --preset quick|bench|paper         base scale (default bench)
              --dataset cifar10|cifar100|fashion|purchase100 (default cifar10)
              --protocol base|samo|somo|same     (default samo)
              --dynamic                          (default static)
              --k <view size>                    (preset default)
              --nodes <n>                        (preset default)
              --rounds <r>                       (preset default)
              --eval-every <r>                   (preset default)
              --beta <dirichlet β>               (default: IID)
              --seed <s>                         (default 42)
              --threads auto|<n>                 attack-replay worker threads
                                                 (default auto = all cores;
                                                 results are identical at any
                                                 setting, 1 = serial path)
              --trace <dir>                      write events.jsonl +
                                                 manifest.json run trace
              --churn <rate>                     per-round crash probability
                                                 per node (downtime 50-200
                                                 ticks, silent rejoin)
              --latency-dist <spec>              per-link delivery latency:
                                                 fixed:TICKS, uniform:MIN:MAX
                                                 or straggler:BASE:TAIL:PROB
              --drop <mean>                      per-link drop probability,
                                                 drawn per link around <mean>
              --attacker <spec>                  threat model: omniscient,
                                                 neighbors:3,7 (passive
                                                 observers) or coalition:0..8
                                                 (colluding members); index
                                                 lists take N and A..B items
              --defense <spec>                   shared-model defense:
                                                 gaussian:STD, mask:FRAC or
                                                 clip:LIMIT
              --telemetry                        record runtime telemetry:
                                                 telemetry.jsonl + profile.json
                                                 beside the trace (with --trace)
                                                 and a live stderr dashboard;
                                                 off by default, and off means
                                                 byte-identical traces
              --quiet                            suppress the stderr progress
                                                 heartbeat (also off when
                                                 stderr is not a terminal)
              --json                             emit JSON instead of a table
              --plot                             draw an ASCII tradeoff scatter

    sweep     expand a TOML scenario file into a seed x config grid and
              run it under a resumable, checkpointed worker pool; writes
              checkpoint.jsonl + sweep.json + report.md (byte-identical
              at any worker count and across kill/resume)
              glmia sweep <scenario.toml> [--out <dir>] [--workers auto|N]
              [--quiet]
              --out defaults to sweeps/<scenario name>; rerunning with an
              existing checkpoint resumes from completed cells

    analyze   derive metrics from a recorded trace directory: per-round
              aggregates, fan-in/staleness histograms, MIA time series and
              the empirical mixing spectrum; writes summary.json + report.md
              into the directory and prints the chosen format
              glmia analyze <trace-dir> [--format json|md|prometheus]

    compare   run the same workload under two settings and overlay the
              privacy/utility curves on one ASCII plot
              --axis topology|protocol           (default topology)
              plus the run options: --dataset --k --nodes --rounds
              --eval-every --beta --seed --threads

    lambda2   measure λ₂(W*) decay over iterations (the paper's Figure 8)
              --k <degree> --nodes <n> --iterations <T> --runs <R>
              --dynamic --seed <s>

    attack    overfit one model on a local shard and run all MIA variants
              --dataset ... --epochs <e> --samples <n> --seed <s>

    topo      generate a random k-regular topology and print its stats
              --nodes <n> --k <degree> --swaps <peer swaps> --seed <s>

    help      show this message

EXIT CODES:
    0  success
    1  runtime failure or invalid option value
    2  usage error (unknown subcommand, unknown option, malformed syntax),
       corrupt trace input (malformed / truncated / unsupported schema),
       or corrupt sweep checkpoint (malformed / wrong schema / different
       scenario)"
    );
}

//! Subcommand implementations.

use std::path::PathBuf;

use glmia_core::prelude::{read_trace, PerfSummary, RunSummary, TraceReadError, TraceWriter};
use glmia_core::{
    lambda2_series, run_experiment, run_experiment_traced, ExperimentConfig, Lambda2Config,
    Parallelism,
};
use glmia_data::{DataPreset, Federation, Partition};
use glmia_gossip::{ChurnConfig, Defense, FaultPlan, LatencyDist, ProtocolKind, TopologyMode};
use glmia_graph::Topology;
use glmia_metrics::{render_markdown_report, render_prometheus, render_table};
use glmia_mia::{AttackKind, AttackerModel, MiaEvaluator};
use glmia_nn::{Mlp, Sgd};
use glmia_sweep::{run_sweep, Scenario, SweepError};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::args::{ArgError, Args, CliError};

fn parse_dataset(raw: &str) -> Result<DataPreset, String> {
    raw.parse()
}

fn parse_protocol(raw: &str) -> Result<ProtocolKind, String> {
    raw.parse()
}

fn parse_preset(raw: &str, dataset: DataPreset) -> Result<ExperimentConfig, String> {
    ExperimentConfig::preset(raw, dataset)
        .ok_or_else(|| format!("unknown preset '{raw}' (expected quick|bench|paper)"))
}

fn reject_unknown(args: &Args, known: &[&str]) -> Result<(), CliError> {
    let unknown = args.unknown_keys(known);
    if unknown.is_empty() {
        Ok(())
    } else {
        Err(ArgError::UnknownOptions(unknown).into())
    }
}

/// `glmia run`
pub fn run(args: &Args) -> Result<(), CliError> {
    args.reject_positionals()?;
    reject_unknown(
        args,
        &[
            "preset",
            "dataset",
            "protocol",
            "dynamic",
            "k",
            "nodes",
            "rounds",
            "eval-every",
            "beta",
            "seed",
            "threads",
            "trace",
            "quiet",
            "json",
            "plot",
            "churn",
            "latency-dist",
            "drop",
            "attacker",
            "defense",
            "telemetry",
        ],
    )?;
    let dataset = parse_dataset(args.get("dataset").unwrap_or("cifar10"))?;
    let protocol = parse_protocol(args.get("protocol").unwrap_or("samo"))?;
    let mut config = parse_preset(args.get("preset").unwrap_or("bench"), dataset)?
        .with_protocol(protocol)
        .with_topology_mode(if args.flag("dynamic") {
            TopologyMode::Dynamic
        } else {
            TopologyMode::Static
        })
        .with_seed(args.get_or("seed", 42u64)?)
        .with_parallelism(args.get_or("threads", Parallelism::Auto)?);
    // Scale knobs override the preset only when given explicitly, so
    // `--preset quick` keeps its own node/round counts.
    if args.get("k").is_some() {
        config = config.with_view_size(args.get_or("k", 0usize)?);
    }
    if args.get("nodes").is_some() {
        config = config.with_nodes(args.get_or("nodes", 0usize)?);
    }
    if args.get("rounds").is_some() {
        config = config.with_rounds(args.get_or("rounds", 0usize)?);
    }
    if args.get("eval-every").is_some() {
        config = config.with_eval_every(args.get_or("eval-every", 0usize)?);
    }
    if let Some(beta) = args.get("beta") {
        let beta: f64 = beta
            .parse()
            .map_err(|_| format!("invalid --beta '{beta}'"))?;
        config = config.with_partition(Partition::Dirichlet { beta });
    }
    // Fault-injection knobs compose into one plan; an empty plan is
    // normalized away so fault-free invocations stay byte-identical.
    let mut fault = FaultPlan::none();
    if args.get("churn").is_some() {
        fault = fault.with_churn(ChurnConfig::new(args.get_or("churn", 0.0f64)?));
    }
    if let Some(spec) = args.get("latency-dist") {
        let dist: LatencyDist = spec.parse().map_err(|_| ArgError::InvalidValue {
            key: "latency-dist".into(),
            value: spec.to_string(),
        })?;
        fault = fault.with_latency(dist);
    }
    if args.get("drop").is_some() {
        fault = fault.with_link_drop(args.get_or("drop", 0.0f64)?);
    }
    config = config.with_fault_plan(fault);
    // Threat-model knobs: both use the colon grammar (`neighbors:3,7`,
    // `gaussian:0.1`) and are validated again, against the node count, by
    // `ExperimentConfig::validate` inside the runner.
    if let Some(spec) = args.get("attacker") {
        let attacker: AttackerModel = spec.parse().map_err(|_| ArgError::InvalidValue {
            key: "attacker".into(),
            value: spec.to_string(),
        })?;
        config = config.with_attacker(attacker);
    }
    if let Some(spec) = args.get("defense") {
        let defense: Defense = spec.parse().map_err(|_| ArgError::InvalidValue {
            key: "defense".into(),
            value: spec.to_string(),
        })?;
        config = config.with_defense(defense);
    }
    config = config.with_progress(!args.flag("quiet"));
    config = config.with_telemetry(args.flag("telemetry"));
    // Create the trace directory *before* running: a run that dies
    // mid-phase still leaves a header-only events.jsonl and a manifest
    // honestly marked `"complete": false`.
    let writer = match args.get("trace") {
        Some("") => return Err("--trace requires a directory".to_string().into()),
        Some(dir) => Some(
            TraceWriter::create(
                dir,
                config.label(),
                config.fingerprint(),
                config.parallelism().threads(),
            )
            .map_err(|e| format!("creating trace dir '{dir}': {e}"))?,
        ),
        None => None,
    };
    eprintln!("running: {}", config.label());
    let (result, trace) = run_experiment_traced(&config).map_err(|e| e.to_string())?;
    if let Some(writer) = writer {
        let dir = writer.dir().display().to_string();
        let telemetry_written = trace.has_telemetry();
        writer
            .finish(&trace)
            .map_err(|e| format!("writing trace to '{dir}': {e}"))?;
        eprintln!("trace: {dir}/events.jsonl, {dir}/manifest.json");
        if telemetry_written {
            eprintln!("telemetry: {dir}/telemetry.jsonl, {dir}/profile.json");
        }
    }
    if args.flag("json") {
        let json = serde_json::to_string_pretty(&result).map_err(|e| e.to_string())?;
        println!("{json}");
        return Ok(());
    }
    let rows: Vec<Vec<String>> = result
        .rounds
        .iter()
        .map(|r| {
            vec![
                r.round.to_string(),
                format!("{}", r.test_accuracy),
                format!("{}", r.train_accuracy),
                format!("{}", r.mia_vulnerability),
                format!("{}", r.gen_error),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["round", "test acc", "train acc", "MIA vuln", "gen error"],
            &rows,
        )
    );
    if args.flag("plot") {
        let series = vec![(config.label(), result.tradeoff_points())];
        println!("\n{}", glmia_metrics::plot_tradeoff(&series, 60, 16));
    }
    let best = result
        .best_point()
        .ok_or_else(|| "experiment produced no rounds".to_string())?;
    println!(
        "\nbest: round {} — accuracy {:.3} at vulnerability {:.3}; {} models sent",
        best.round, best.utility, best.vulnerability, result.messages_sent
    );
    Ok(())
}

/// `glmia sweep <scenario.toml>`: expand a scenario file into its cell
/// grid and run (or resume) it under the checkpointed worker pool.
pub fn sweep(args: &Args) -> Result<(), CliError> {
    reject_unknown(args, &["out", "workers", "quiet"])?;
    let scenario_path = args.require_positional(0, "<scenario.toml>")?;
    if let Some(extra) = args.positional(1) {
        return Err(ArgError::UnexpectedPositional(extra.to_string()).into());
    }
    let scenario = Scenario::from_path(std::path::Path::new(scenario_path))
        .map_err(|e| CliError::Failure(e.to_string()))?;
    let out = args.get("out").map_or_else(
        || PathBuf::from("sweeps").join(scenario.name()),
        PathBuf::from,
    );
    let workers = args.get_or("workers", Parallelism::Auto)?;
    let progress = !args.flag("quiet");
    let outcome = run_sweep(&scenario, &out, workers, progress).map_err(|e| match e {
        SweepError::Checkpoint(message) => CliError::CorruptCheckpoint(message),
        other => CliError::Failure(other.to_string()),
    })?;
    println!(
        "sweep '{}': {} cells ({} resumed, {} ran)",
        scenario.name(),
        outcome.total,
        outcome.resumed,
        outcome.ran,
    );
    println!("  {}", outcome.sweep_json.display());
    println!("  {}", outcome.report_md.display());
    Ok(())
}

/// `glmia compare`: run the same workload under two protocol/topology
/// settings and overlay their tradeoff curves.
pub fn compare(args: &Args) -> Result<(), CliError> {
    args.reject_positionals()?;
    reject_unknown(
        args,
        &[
            "dataset",
            "k",
            "nodes",
            "rounds",
            "eval-every",
            "beta",
            "seed",
            "threads",
            "axis",
        ],
    )?;
    let dataset = parse_dataset(args.get("dataset").unwrap_or("cifar10"))?;
    let axis = args.get("axis").unwrap_or("topology");
    let base = |config: ExperimentConfig| -> ExperimentConfig {
        let mut config = config
            .with_view_size(args.get_or("k", 2usize).unwrap_or(2))
            .with_nodes(args.get_or("nodes", 24usize).unwrap_or(24))
            .with_rounds(args.get_or("rounds", 40usize).unwrap_or(40))
            .with_eval_every(args.get_or("eval-every", 4usize).unwrap_or(4))
            .with_seed(args.get_or("seed", 42u64).unwrap_or(42))
            .with_parallelism(
                args.get_or("threads", Parallelism::Auto)
                    .unwrap_or_default(),
            );
        if let Some(beta) = args.get("beta") {
            if let Ok(beta) = beta.parse::<f64>() {
                config = config.with_partition(Partition::Dirichlet { beta });
            }
        }
        config
    };
    let variants: Vec<ExperimentConfig> = match axis {
        "topology" => vec![
            base(ExperimentConfig::bench_scale(dataset)).with_topology_mode(TopologyMode::Static),
            base(ExperimentConfig::bench_scale(dataset)).with_topology_mode(TopologyMode::Dynamic),
        ],
        "protocol" => vec![
            base(ExperimentConfig::bench_scale(dataset)).with_protocol(ProtocolKind::BaseGossip),
            base(ExperimentConfig::bench_scale(dataset)).with_protocol(ProtocolKind::Samo),
        ],
        other => {
            return Err(format!("unknown --axis '{other}' (expected topology|protocol)").into())
        }
    };
    let mut series = Vec::new();
    for config in variants {
        eprintln!("running: {}", config.label());
        let result = run_experiment(&config).map_err(|e| e.to_string())?;
        let best = result
            .best_point()
            .ok_or_else(|| "experiment produced no rounds".to_string())?;
        println!(
            "{:<50} max acc {:.3} @ vuln {:.3} ({} models sent)",
            config.label(),
            best.utility,
            best.vulnerability,
            result.messages_sent
        );
        series.push((config.label(), result.tradeoff_points()));
    }
    println!("\n{}", glmia_metrics::plot_tradeoff(&series, 60, 16));
    Ok(())
}

/// `glmia analyze <trace-dir>`: derive per-round aggregates, histograms
/// and the empirical mixing spectrum from a recorded trace, write
/// `summary.json` + `report.md` back into the trace directory, and print
/// the chosen rendering. A trace that cannot be *read* (missing file,
/// I/O failure) is a runtime failure (exit 1); a trace that reads but is
/// *corrupt* — malformed JSON, truncated tail, unsupported schema,
/// non-finite floats, out-of-order rounds — exits 2 so scripts can tell
/// bad input from transient failures.
pub fn analyze(args: &Args) -> Result<(), CliError> {
    reject_unknown(args, &["format"])?;
    let dir = PathBuf::from(args.require_positional(0, "<trace-dir>")?);
    if let Some(extra) = args.positionals().get(1) {
        return Err(ArgError::UnexpectedPositional(extra.clone()).into());
    }
    let format = args.get("format").unwrap_or("md");
    if !matches!(format, "json" | "md" | "prometheus") {
        return Err(ArgError::InvalidValue {
            key: "format".into(),
            value: format.to_string(),
        }
        .into());
    }
    let events_path = dir.join("events.jsonl");
    let (header, events) = read_trace(&events_path).map_err(|e| match e {
        TraceReadError::Io(_) => CliError::Failure(format!("{}: {e}", events_path.display())),
        corrupt => CliError::CorruptTrace(format!("{}: {corrupt}", events_path.display())),
    })?;
    let mut summary = RunSummary::from_events(&header, &events);
    // Telemetry artifacts are an optional side-channel: when the run wrote
    // a `telemetry.jsonl` (and usually a `profile.json`) next to the event
    // stream, fold them into the summary's Performance section. Their
    // absence — or a malformed side-stream — leaves the summary exactly as
    // a telemetry-off run would produce it.
    if let Ok(stream) = std::fs::read_to_string(dir.join("telemetry.jsonl")) {
        let profile = std::fs::read_to_string(dir.join("profile.json")).ok();
        summary.perf = PerfSummary::from_artifacts(&stream, profile.as_deref());
    }
    // The summary is a pure function of the event stream, so these files
    // inherit the trace's byte-identity across thread counts and reruns.
    let json = summary.to_json_pretty();
    let md = render_markdown_report(&summary);
    std::fs::write(dir.join("summary.json"), &json)
        .map_err(|e| format!("writing {}: {e}", dir.join("summary.json").display()))?;
    std::fs::write(dir.join("report.md"), &md)
        .map_err(|e| format!("writing {}: {e}", dir.join("report.md").display()))?;
    match format {
        "json" => print!("{json}"),
        "prometheus" => print!("{}", render_prometheus(&summary)),
        _ => print!("{md}"),
    }
    eprintln!(
        "wrote {}, {}",
        dir.join("summary.json").display(),
        dir.join("report.md").display()
    );
    Ok(())
}

/// `glmia lambda2`
pub fn lambda2(args: &Args) -> Result<(), CliError> {
    args.reject_positionals()?;
    reject_unknown(
        args,
        &["k", "nodes", "iterations", "runs", "dynamic", "seed"],
    )?;
    let config = Lambda2Config {
        nodes: args.get_or("nodes", 150usize)?,
        view_size: args.get_or("k", 2usize)?,
        iterations: args.get_or("iterations", 15usize)?,
        runs: args.get_or("runs", 10usize)?,
        mode: if args.flag("dynamic") {
            TopologyMode::Dynamic
        } else {
            TopologyMode::Static
        },
        seed: args.get_or("seed", 42u64)?,
    };
    let series = lambda2_series(&config).map_err(|e| e.to_string())?;
    let rows: Vec<Vec<String>> = series
        .mean
        .iter()
        .zip(&series.std)
        .enumerate()
        .map(|(t, (m, s))| vec![(t + 1).to_string(), format!("{m:.6}"), format!("{s:.6}")])
        .collect();
    print!("{}", render_table(&["iterations", "λ₂(W*)", "std"], &rows));
    Ok(())
}

/// `glmia attack`
pub fn attack(args: &Args) -> Result<(), CliError> {
    args.reject_positionals()?;
    reject_unknown(args, &["dataset", "epochs", "samples", "seed"])?;
    let dataset = parse_dataset(args.get("dataset").unwrap_or("cifar10"))?;
    let epochs: usize = args.get_or("epochs", 100usize)?;
    let samples: usize = args.get_or("samples", 64usize)?;
    let seed: u64 = args.get_or("seed", 42u64)?;
    if samples == 0 || epochs == 0 {
        return Err("--samples and --epochs must be positive".to_string().into());
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let config = ExperimentConfig::bench_scale(dataset);
    let data_spec = config.data_spec();
    let fed = Federation::build(&data_spec, 2, samples, samples, Partition::Iid, &mut rng)
        .map_err(|e| e.to_string())?;
    let node = fed.node(0);
    let model_spec = config.model_spec().map_err(|e| e.to_string())?;
    let mut victim = Mlp::new(&model_spec, &mut rng);
    let training = config.training();
    let mut opt = Sgd::new(training.learning_rate).with_weight_decay(training.weight_decay);
    if training.momentum > 0.0 {
        opt = opt.with_momentum(training.momentum);
    }
    for _ in 0..epochs {
        victim.train_epoch(
            node.train.features(),
            node.train.labels(),
            16,
            &mut opt,
            &mut rng,
        );
    }
    println!(
        "victim after {epochs} epochs: train acc {:.3}, local test acc {:.3}",
        victim.accuracy(node.train.features(), node.train.labels()),
        victim.accuracy(node.test.features(), node.test.labels()),
    );
    let rows: Vec<Vec<String>> = AttackKind::ALL
        .iter()
        .map(|&kind| {
            let result = MiaEvaluator::new(kind)
                .evaluate(&victim, &node.train, &node.test, &mut rng)
                .map_err(|e| e.to_string())?;
            Ok(vec![
                kind.to_string(),
                format!("{:.3}", result.attack_accuracy),
                format!("{:.3}", result.auc),
                format!("{:.4}", result.threshold),
            ])
        })
        .collect::<Result<_, String>>()?;
    print!(
        "{}",
        render_table(&["attack", "accuracy", "AUC", "threshold"], &rows)
    );
    Ok(())
}

/// `glmia topo`
pub fn topo(args: &Args) -> Result<(), CliError> {
    args.reject_positionals()?;
    reject_unknown(args, &["nodes", "k", "swaps", "seed"])?;
    let nodes: usize = args.get_or("nodes", 24usize)?;
    let k: usize = args.get_or("k", 4usize)?;
    let swaps: usize = args.get_or("swaps", 0usize)?;
    let seed: u64 = args.get_or("seed", 42u64)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Topology::random_regular(nodes, k, &mut rng).map_err(|e| e.to_string())?;
    for _ in 0..swaps {
        let i = rand::Rng::gen_range(&mut rng, 0..g.len());
        g.swap_with_random_neighbor(i, &mut rng);
    }
    let stats = g.stats();
    let w = glmia_spectral::MixingMatrix::from_regular(&g).map_err(|e| e.to_string())?;
    println!(
        "random {k}-regular graph on {nodes} nodes after {swaps} PeerSwap steps:\n\
         edges: {}\n\
         connected: {}\n\
         diameter: {}\n\
         average path length: {}\n\
         clustering coefficient: {:.4}\n\
         λ₂(W): {:.6}   spectral gap: {:.6}",
        stats.edges,
        g.is_connected(),
        stats.diameter.map_or("∞".into(), |d| d.to_string()),
        stats
            .average_path_length
            .map_or("—".into(), |l| format!("{l:.3}")),
        stats.clustering_coefficient,
        w.try_lambda2().map_err(|e| e.to_string())?,
        w.try_spectral_gap().map_err(|e| e.to_string())?,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| (*s).to_string())).unwrap()
    }

    #[test]
    fn dataset_names_parse() {
        assert_eq!(parse_dataset("cifar10").unwrap(), DataPreset::Cifar10Like);
        assert_eq!(parse_dataset("cifar100").unwrap(), DataPreset::Cifar100Like);
        assert_eq!(
            parse_dataset("fashion").unwrap(),
            DataPreset::FashionMnistLike
        );
        assert_eq!(
            parse_dataset("purchase100").unwrap(),
            DataPreset::Purchase100Like
        );
        assert!(parse_dataset("mnist").is_err());
    }

    #[test]
    fn protocol_names_parse() {
        assert_eq!(parse_protocol("base").unwrap(), ProtocolKind::BaseGossip);
        assert_eq!(parse_protocol("samo").unwrap(), ProtocolKind::Samo);
        assert_eq!(
            parse_protocol("somo").unwrap(),
            ProtocolKind::SendOneMergeOnce
        );
        assert_eq!(
            parse_protocol("same").unwrap(),
            ProtocolKind::SendAllMergeEach
        );
        assert!(parse_protocol("push-pull").is_err());
    }

    #[test]
    fn preset_names_parse() {
        let quick = parse_preset("quick", DataPreset::Cifar10Like).unwrap();
        assert_eq!(quick, ExperimentConfig::quick_test(DataPreset::Cifar10Like));
        let bench = parse_preset("bench", DataPreset::Cifar10Like).unwrap();
        assert_eq!(
            bench,
            ExperimentConfig::bench_scale(DataPreset::Cifar10Like)
        );
        let paper = parse_preset("paper", DataPreset::Cifar10Like).unwrap();
        assert_eq!(
            paper,
            ExperimentConfig::paper_scale(DataPreset::Cifar10Like)
        );
        assert!(parse_preset("huge", DataPreset::Cifar10Like).is_err());
    }

    #[test]
    fn unknown_options_are_rejected_as_usage_errors() {
        let a = args(&["run", "--nodse", "8"]);
        let err = run(&a).unwrap_err();
        assert_eq!(err, ArgError::UnknownOptions(vec!["nodse".into()]).into());
        assert_eq!(err.exit_code(), 2);
        let a = args(&["lambda2", "--oops"]);
        assert_eq!(lambda2(&a).unwrap_err().exit_code(), 2);
    }

    #[test]
    fn invalid_thread_counts_are_value_errors() {
        let a = args(&["run", "--threads", "0"]);
        let err = run(&a).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        let a = args(&["run", "--threads", "lots"]);
        let err = run(&a).unwrap_err();
        assert_eq!(
            err,
            ArgError::InvalidValue {
                key: "threads".into(),
                value: "lots".into(),
            }
            .into()
        );
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn run_rejects_invalid_config_before_simulating() {
        // view_size >= nodes fails validate(), a runtime (exit 1) error.
        let a = args(&["run", "--preset", "quick", "--k", "99"]);
        let err = run(&a).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("view_size"), "{err}");
    }

    #[test]
    fn topo_runs_end_to_end() {
        let a = args(&["topo", "--nodes", "12", "--k", "2", "--swaps", "3"]);
        assert!(topo(&a).is_ok());
    }

    #[test]
    fn lambda2_runs_small() {
        let a = args(&[
            "lambda2",
            "--nodes",
            "16",
            "--k",
            "2",
            "--iterations",
            "3",
            "--runs",
            "2",
        ]);
        assert!(lambda2(&a).is_ok());
    }

    #[test]
    fn attack_rejects_zero_samples() {
        let a = args(&["attack", "--samples", "0"]);
        assert!(attack(&a).is_err());
    }

    #[test]
    fn compare_rejects_unknown_axis() {
        let a = args(&["compare", "--axis", "weather"]);
        assert!(compare(&a).is_err());
    }

    #[test]
    fn run_rejects_positionals_as_usage_errors() {
        let a = args(&["run", "--preset", "quick", "oops"]);
        let err = run(&a).unwrap_err();
        assert_eq!(err, ArgError::UnexpectedPositional("oops".into()).into());
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn analyze_requires_a_trace_dir() {
        let err = analyze(&args(&["analyze"])).unwrap_err();
        assert_eq!(err, ArgError::MissingPositional("<trace-dir>").into());
        assert_eq!(err.exit_code(), 2, "missing operand is a usage error");
    }

    #[test]
    fn analyze_rejects_unknown_formats_as_value_errors() {
        let err = analyze(&args(&["analyze", "some/dir", "--format", "xml"])).unwrap_err();
        assert_eq!(
            err,
            ArgError::InvalidValue {
                key: "format".into(),
                value: "xml".into(),
            }
            .into()
        );
        assert_eq!(err.exit_code(), 1);
    }

    #[test]
    fn run_rejects_malformed_fault_flags_as_value_errors() {
        let a = args(&["run", "--latency-dist", "poisson:4"]);
        let err = run(&a).unwrap_err();
        assert_eq!(
            err,
            ArgError::InvalidValue {
                key: "latency-dist".into(),
                value: "poisson:4".into(),
            }
            .into()
        );
        assert_eq!(err.exit_code(), 1);
        let a = args(&["run", "--churn", "lots"]);
        assert_eq!(run(&a).unwrap_err().exit_code(), 1);
        // Out-of-range values survive parsing but fail config validation.
        let a = args(&["run", "--preset", "quick", "--churn", "1.5"]);
        let err = run(&a).unwrap_err();
        assert_eq!(err.exit_code(), 1);
        assert!(err.to_string().contains("churn rate"), "{err}");
    }

    #[test]
    fn analyze_reports_corrupt_traces_with_exit_2() {
        let dir =
            std::env::temp_dir().join(format!("glmia-cli-unit-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("events.jsonl"), "{\"schema\":2,\"tool\":\"x\"").unwrap();
        let err = analyze(&args(&["analyze", dir.to_str().unwrap()])).unwrap_err();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(err.exit_code(), 2, "corrupt input is exit 2: {err}");
        assert!(err.to_string().starts_with("corrupt trace: "), "{err}");
    }

    #[test]
    fn analyze_reports_missing_traces_as_runtime_failures() {
        let err = analyze(&args(&["analyze", "/nonexistent/trace-dir"])).unwrap_err();
        assert_eq!(err.exit_code(), 1, "unreadable trace is not a usage error");
        assert!(err.to_string().contains("events.jsonl"), "{err}");
    }
}

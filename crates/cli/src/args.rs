//! A small `--key value` argument parser (the workspace's dependency set
//! deliberately excludes a CLI framework).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    subcommand: Option<String>,
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parses `args` (excluding the program name). The first non-flag token
    /// is the subcommand; the rest must be `--key value` pairs or `--flag`
    /// (stored with an empty value).
    ///
    /// # Errors
    ///
    /// Returns a message when a positional token appears after options or a
    /// key is repeated.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut parsed = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(key) = token.strip_prefix("--") {
                if key.is_empty() {
                    return Err("empty option name '--'".into());
                }
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap_or_default(),
                    _ => String::new(),
                };
                if parsed.options.insert(key.to_string(), value).is_some() {
                    return Err(format!("option --{key} given twice"));
                }
            } else if parsed.subcommand.is_none() && parsed.options.is_empty() {
                parsed.subcommand = Some(token);
            } else {
                return Err(format!("unexpected positional argument '{token}'"));
            }
        }
        Ok(parsed)
    }

    /// The subcommand, if any.
    #[must_use]
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// A raw option value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a bare `--flag` was passed.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// A parsed option value with a default.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value for --{key}: '{raw}'")),
        }
    }

    /// Option keys that were provided but not consumed by the command's
    /// known set — used to reject typos.
    #[must_use]
    pub fn unknown_keys(&self, known: &[&str]) -> Vec<String> {
        self.options
            .keys()
            .filter(|k| !known.contains(&k.as_str()))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, String> {
        Args::parse(tokens.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = parse(&["run", "--nodes", "24", "--dynamic"]).unwrap();
        assert_eq!(a.subcommand(), Some("run"));
        assert_eq!(a.get("nodes"), Some("24"));
        assert!(a.flag("dynamic"));
        assert!(!a.flag("static"));
    }

    #[test]
    fn get_or_parses_with_default() {
        let a = parse(&["run", "--rounds", "7"]).unwrap();
        assert_eq!(a.get_or("rounds", 10usize).unwrap(), 7);
        assert_eq!(a.get_or("seed", 42u64).unwrap(), 42);
        assert!(a.get_or("rounds", 1.5f64).is_ok());
    }

    #[test]
    fn rejects_bad_values() {
        let a = parse(&["run", "--rounds", "many"]).unwrap();
        assert!(a.get_or("rounds", 10usize).is_err());
    }

    #[test]
    fn rejects_duplicate_keys() {
        assert!(parse(&["run", "--k", "1", "--k", "2"]).is_err());
    }

    #[test]
    fn rejects_trailing_positionals() {
        assert!(parse(&["run", "--k", "1", "oops"]).is_err());
    }

    #[test]
    fn empty_args_have_no_subcommand() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.subcommand(), None);
    }

    #[test]
    fn unknown_keys_are_reported() {
        let a = parse(&["run", "--nodes", "8", "--typo", "x"]).unwrap();
        assert_eq!(a.unknown_keys(&["nodes"]), vec!["typo".to_string()]);
    }
}

//! A small `--key value` argument parser (the workspace's dependency set
//! deliberately excludes a CLI framework), with typed errors so `main`
//! can map *usage* mistakes and *value* mistakes to distinct exit codes.

use std::collections::BTreeMap;
use std::fmt;

/// A command-line error, classified so the binary can exit with the
/// conventional code for each kind: **usage** errors (a name the CLI does
/// not know — subcommand, option, malformed `--` syntax) exit with `2`;
/// **value** errors (a known option given an unparsable value) exit
/// with `1` like runtime failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A bare `--` with no option name.
    EmptyOptionName,
    /// The same `--key` appeared twice.
    DuplicateOption(String),
    /// A positional token given to a subcommand that takes none.
    UnexpectedPositional(String),
    /// A required positional argument (e.g. `analyze <trace-dir>`) was
    /// not given.
    MissingPositional(&'static str),
    /// A known option's value failed to parse.
    InvalidValue {
        /// The option name (without `--`).
        key: String,
        /// The rejected raw value.
        value: String,
    },
    /// Options no subcommand consumes (typos).
    UnknownOptions(Vec<String>),
    /// A subcommand the CLI does not know.
    UnknownSubcommand(String),
}

impl ArgError {
    /// `true` for mistakes in the command *shape* (unknown names,
    /// malformed syntax) — exit code 2; `false` for bad values — exit
    /// code 1.
    #[must_use]
    pub fn is_usage(&self) -> bool {
        !matches!(self, ArgError::InvalidValue { .. })
    }
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::EmptyOptionName => f.write_str("empty option name '--'"),
            ArgError::DuplicateOption(key) => write!(f, "option --{key} given twice"),
            ArgError::UnexpectedPositional(token) => {
                write!(f, "unexpected positional argument '{token}'")
            }
            ArgError::MissingPositional(name) => {
                write!(f, "missing required argument {name}")
            }
            ArgError::InvalidValue { key, value } => {
                write!(f, "invalid value for --{key}: '{value}'")
            }
            ArgError::UnknownOptions(keys) => {
                write!(f, "unknown options: --{}", keys.join(", --"))
            }
            ArgError::UnknownSubcommand(name) => write!(f, "unknown subcommand '{name}'"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Any failure a subcommand can report: a CLI [`ArgError`] or a runtime
/// failure (experiment error, I/O). [`exit_code`](CliError::exit_code)
/// maps usage errors to `2` and everything else to `1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The command line itself was wrong.
    Arg(ArgError),
    /// An input file exists and was readable but is not a valid trace
    /// (malformed JSON, truncated tail, unsupported schema, non-finite
    /// floats, out-of-order rounds). Exits `2` like usage errors: the
    /// *invocation* named bad input, distinguishing it from transient
    /// runtime failures so scripts can tell the two apart.
    CorruptTrace(String),
    /// A sweep output directory holds a checkpoint that is malformed, has
    /// an unsupported schema, or belongs to a different scenario. Exits
    /// `2` for the same reason as [`CliError::CorruptTrace`]: the input
    /// named on the command line is bad, not the run transiently failing.
    CorruptCheckpoint(String),
    /// The command ran and failed.
    Failure(String),
}

impl CliError {
    /// The process exit code this error warrants: `2` for usage errors
    /// (unknown subcommand/option, malformed syntax) and corrupt trace
    /// input, `1` otherwise.
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Arg(e) if e.is_usage() => 2,
            CliError::CorruptTrace(_) | CliError::CorruptCheckpoint(_) => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Arg(e) => e.fmt(f),
            CliError::CorruptTrace(message) => write!(f, "corrupt trace: {message}"),
            CliError::CorruptCheckpoint(message) => {
                write!(f, "corrupt checkpoint: {message}")
            }
            CliError::Failure(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Arg(e)
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Failure(message)
    }
}

/// Parsed command line: a subcommand, its positional arguments, and
/// `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    subcommand: Option<String>,
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parses `args` (excluding the program name). The first non-flag token
    /// is the subcommand; the rest are `--key value` pairs, `--flag`s
    /// (stored with an empty value), or positional arguments. Subcommands
    /// that take no positionals reject them via
    /// [`reject_positionals`](Args::reject_positionals).
    ///
    /// # Errors
    ///
    /// Returns an [`ArgError`] when a key is repeated or an option name
    /// is empty.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, ArgError> {
        let mut parsed = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(key) = token.strip_prefix("--") {
                if key.is_empty() {
                    return Err(ArgError::EmptyOptionName);
                }
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().unwrap_or_default(),
                    _ => String::new(),
                };
                if parsed.options.insert(key.to_string(), value).is_some() {
                    return Err(ArgError::DuplicateOption(key.to_string()));
                }
            } else if parsed.subcommand.is_none()
                && parsed.options.is_empty()
                && parsed.positionals.is_empty()
            {
                parsed.subcommand = Some(token);
            } else {
                parsed.positionals.push(token);
            }
        }
        Ok(parsed)
    }

    /// Positional arguments after the subcommand, in order.
    #[must_use]
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// The `index`-th positional argument, if given.
    #[must_use]
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positionals.get(index).map(String::as_str)
    }

    /// The `index`-th positional, or a usage error naming the missing
    /// argument (e.g. `"<trace-dir>"`).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingPositional`] when absent.
    pub fn require_positional(&self, index: usize, name: &'static str) -> Result<&str, ArgError> {
        self.positional(index)
            .ok_or(ArgError::MissingPositional(name))
    }

    /// Rejects any positional arguments — for subcommands that take none.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::UnexpectedPositional`] naming the first one.
    pub fn reject_positionals(&self) -> Result<(), ArgError> {
        match self.positionals.first() {
            None => Ok(()),
            Some(token) => Err(ArgError::UnexpectedPositional(token.clone())),
        }
    }

    /// The subcommand, if any.
    #[must_use]
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// A raw option value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a bare `--flag` was passed.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// A parsed option value with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::InvalidValue`] when the value does not parse
    /// as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::InvalidValue {
                key: key.to_string(),
                value: raw.to_string(),
            }),
        }
    }

    /// Option keys that were provided but not consumed by the command's
    /// known set — used to reject typos.
    #[must_use]
    pub fn unknown_keys(&self, known: &[&str]) -> Vec<String> {
        self.options
            .keys()
            .filter(|k| !known.contains(&k.as_str()))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_subcommand_and_options() {
        let a = parse(&["run", "--nodes", "24", "--dynamic"]).unwrap();
        assert_eq!(a.subcommand(), Some("run"));
        assert_eq!(a.get("nodes"), Some("24"));
        assert!(a.flag("dynamic"));
        assert!(!a.flag("static"));
    }

    #[test]
    fn get_or_parses_with_default() {
        let a = parse(&["run", "--rounds", "7"]).unwrap();
        assert_eq!(a.get_or("rounds", 10usize).unwrap(), 7);
        assert_eq!(a.get_or("seed", 42u64).unwrap(), 42);
        assert!(a.get_or("rounds", 1.5f64).is_ok());
    }

    #[test]
    fn rejects_bad_values_as_invalid_value() {
        let a = parse(&["run", "--rounds", "many"]).unwrap();
        let err = a.get_or("rounds", 10usize).unwrap_err();
        assert_eq!(
            err,
            ArgError::InvalidValue {
                key: "rounds".into(),
                value: "many".into(),
            }
        );
        assert!(!err.is_usage(), "bad values are not usage errors");
        assert_eq!(CliError::from(err).exit_code(), 1);
    }

    #[test]
    fn rejects_duplicate_keys() {
        assert_eq!(
            parse(&["run", "--k", "1", "--k", "2"]).unwrap_err(),
            ArgError::DuplicateOption("k".into())
        );
    }

    #[test]
    fn collects_positionals_in_order() {
        let a = parse(&["analyze", "out/trace", "--format", "json", "extra"]).unwrap();
        assert_eq!(a.subcommand(), Some("analyze"));
        assert_eq!(a.positionals(), ["out/trace".to_string(), "extra".into()]);
        assert_eq!(a.positional(0), Some("out/trace"));
        assert_eq!(a.positional(2), None);
        assert_eq!(a.require_positional(0, "<trace-dir>").unwrap(), "out/trace");
        assert_eq!(
            a.require_positional(2, "<thing>").unwrap_err(),
            ArgError::MissingPositional("<thing>")
        );
    }

    #[test]
    fn commands_without_positionals_can_reject_them() {
        let a = parse(&["run", "--k", "1", "oops"]).unwrap();
        assert_eq!(
            a.reject_positionals().unwrap_err(),
            ArgError::UnexpectedPositional("oops".into())
        );
        assert!(parse(&["run", "--k", "1"])
            .unwrap()
            .reject_positionals()
            .is_ok());
    }

    #[test]
    fn rejects_empty_option_name() {
        assert_eq!(
            parse(&["run", "--"]).unwrap_err(),
            ArgError::EmptyOptionName
        );
    }

    #[test]
    fn empty_args_have_no_subcommand() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.subcommand(), None);
    }

    #[test]
    fn unknown_keys_are_reported() {
        let a = parse(&["run", "--nodes", "8", "--typo", "x"]).unwrap();
        assert_eq!(a.unknown_keys(&["nodes"]), vec!["typo".to_string()]);
    }

    #[test]
    fn usage_errors_exit_with_2() {
        for err in [
            ArgError::EmptyOptionName,
            ArgError::DuplicateOption("k".into()),
            ArgError::UnexpectedPositional("x".into()),
            ArgError::MissingPositional("<trace-dir>"),
            ArgError::UnknownOptions(vec!["typo".into()]),
            ArgError::UnknownSubcommand("zap".into()),
        ] {
            assert!(err.is_usage());
            assert_eq!(CliError::from(err).exit_code(), 2);
        }
        assert_eq!(CliError::Failure("boom".into()).exit_code(), 1);
        let corrupt = CliError::CorruptTrace("trace line 3: bad".into());
        assert_eq!(corrupt.exit_code(), 2, "corrupt input is not transient");
        assert_eq!(corrupt.to_string(), "corrupt trace: trace line 3: bad");
        let checkpoint = CliError::CorruptCheckpoint("line 2: bad".into());
        assert_eq!(checkpoint.exit_code(), 2);
        assert_eq!(checkpoint.to_string(), "corrupt checkpoint: line 2: bad");
    }

    #[test]
    fn errors_display_their_context() {
        assert_eq!(
            ArgError::UnknownOptions(vec!["a".into(), "b".into()]).to_string(),
            "unknown options: --a, --b"
        );
        assert_eq!(
            ArgError::UnknownSubcommand("zap".into()).to_string(),
            "unknown subcommand 'zap'"
        );
        assert_eq!(
            ArgError::InvalidValue {
                key: "rounds".into(),
                value: "many".into(),
            }
            .to_string(),
            "invalid value for --rounds: 'many'"
        );
    }
}

//! Per-node data assignment for a decentralized learning run.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{DataError, Dataset, Partition, SyntheticSpec};

/// One node's local data: the training shard `Dᵢ,train` and a held-out local
/// test split `Dᵢ,test`.
///
/// The train split is the MIA *member* pool; the local test split is the
/// *non-member* pool and the generalization-error reference (Eq. 7).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeData {
    /// Local training samples (members).
    pub train: Dataset,
    /// Local held-out samples (non-members).
    pub test: Dataset,
}

/// The data side of a decentralized learning experiment: one [`NodeData`]
/// per node plus a shared global test set for utility evaluation.
///
/// # Examples
///
/// ```
/// use glmia_data::{DataPreset, Federation, Partition};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let spec = DataPreset::FashionMnistLike.spec().with_num_classes(4).with_input_dim(8);
/// let fed = Federation::build(&spec, 5, 20, 10, Partition::Iid, &mut rng)?;
/// assert_eq!(fed.nodes().len(), 5);
/// assert!(!fed.global_test().is_empty());
/// # Ok::<(), glmia_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Federation {
    nodes: Vec<NodeData>,
    global_test: Dataset,
}

impl Federation {
    /// Builds the data for an `n_nodes`-node experiment.
    ///
    /// A fresh synthetic world is drawn from `spec`; a global *training*
    /// pool of `n_nodes × train_per_node` samples is partitioned across
    /// nodes according to `partition`. Following the paper's §3.6 ("we
    /// sample the proportion of records with label k across the *training
    /// sets* of the N nodes"), heterogeneity applies to the training shards
    /// only: every node's held-out local test split (`test_per_node`
    /// samples, the MIA non-member pool and the Eq. 7 reference) is drawn
    /// IID from the global distribution, as is the shared global test set
    /// of `clamp(n_nodes × test_per_node, 100, 2000)` samples.
    ///
    /// Under a [`Partition::Dirichlet`] partition, per-node *training*
    /// sizes vary — that imbalance is part of the non-IID regime the paper
    /// studies; `train_per_node` then controls the average.
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] if any size is zero or the partition fails.
    pub fn build<R: Rng + ?Sized>(
        spec: &SyntheticSpec,
        n_nodes: usize,
        train_per_node: usize,
        test_per_node: usize,
        partition: Partition,
        rng: &mut R,
    ) -> Result<Self, DataError> {
        if n_nodes == 0 {
            return Err(DataError::new("n_nodes must be positive"));
        }
        if train_per_node == 0 || test_per_node == 0 {
            return Err(DataError::new(
                "train_per_node and test_per_node must be positive",
            ));
        }
        let world = spec.sample_world(rng);
        let pool = world.sample(n_nodes * train_per_node, rng);
        let shards = partition.apply(&pool, n_nodes, rng)?;
        let nodes = shards
            .into_iter()
            .map(|train| NodeData {
                train,
                test: world.sample(test_per_node, rng),
            })
            .collect();
        let global_test_size = (n_nodes * test_per_node).clamp(100, 2000);
        let global_test = world.sample(global_test_size, rng);
        Ok(Self { nodes, global_test })
    }

    /// All per-node datasets.
    #[must_use]
    pub fn nodes(&self) -> &[NodeData] {
        &self.nodes
    }

    /// One node's data.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node(&self, i: usize) -> &NodeData {
        &self.nodes[i]
    }

    /// The shared global test set.
    #[must_use]
    pub fn global_test(&self) -> &Dataset {
        &self.global_test
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the federation has zero nodes (never true for a successfully
    /// built value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DataPreset, FeatureKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn small_spec() -> SyntheticSpec {
        SyntheticSpec::new(4, 6, FeatureKind::Gaussian).unwrap()
    }

    #[test]
    fn build_validates() {
        let spec = small_spec();
        assert!(Federation::build(&spec, 0, 10, 5, Partition::Iid, &mut rng(0)).is_err());
        assert!(Federation::build(&spec, 3, 0, 5, Partition::Iid, &mut rng(0)).is_err());
        assert!(Federation::build(&spec, 3, 10, 0, Partition::Iid, &mut rng(0)).is_err());
    }

    #[test]
    fn iid_nodes_get_exact_sizes() {
        let fed = Federation::build(&small_spec(), 6, 20, 10, Partition::Iid, &mut rng(1)).unwrap();
        for node in fed.nodes() {
            assert_eq!(node.train.len(), 20);
            assert_eq!(node.test.len(), 10);
        }
    }

    #[test]
    fn dirichlet_nodes_are_nonempty() {
        let fed = Federation::build(
            &small_spec(),
            8,
            20,
            10,
            Partition::Dirichlet { beta: 0.1 },
            &mut rng(2),
        )
        .unwrap();
        for (i, node) in fed.nodes().iter().enumerate() {
            assert!(node.train.len() >= 2, "node {i} has undersized train split");
            assert_eq!(node.test.len(), 10, "test splits are IID and fixed-size");
        }
        // The training pool is conserved across shards.
        let total: usize = fed.nodes().iter().map(|n| n.train.len()).sum();
        assert_eq!(total, 8 * 20);
    }

    #[test]
    fn dirichlet_skews_train_but_not_test() {
        // §3.6: heterogeneity applies to training sets only; local test
        // splits stay IID.
        let skew =
            |d: &crate::Dataset| *d.class_counts().iter().max().unwrap() as f64 / d.len() as f64;
        let fed = Federation::build(
            &small_spec(),
            6,
            60,
            60,
            Partition::Dirichlet { beta: 0.05 },
            &mut rng(13),
        )
        .unwrap();
        let mean = |xs: Vec<f64>| xs.iter().sum::<f64>() / xs.len() as f64;
        let train_skew = mean(fed.nodes().iter().map(|n| skew(&n.train)).collect());
        let test_skew = mean(fed.nodes().iter().map(|n| skew(&n.test)).collect());
        assert!(
            train_skew > test_skew + 0.2,
            "train skew {train_skew:.2} should exceed IID test skew {test_skew:.2}"
        );
    }

    #[test]
    fn global_test_is_clamped() {
        let fed = Federation::build(&small_spec(), 3, 10, 5, Partition::Iid, &mut rng(3)).unwrap();
        assert_eq!(fed.global_test().len(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Federation::build(&small_spec(), 4, 10, 5, Partition::Iid, &mut rng(7)).unwrap();
        let b = Federation::build(&small_spec(), 4, 10, 5, Partition::Iid, &mut rng(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn presets_build() {
        for preset in DataPreset::ALL {
            let spec = preset.spec().with_num_classes(5).with_input_dim(12);
            let fed = Federation::build(&spec, 4, 15, 8, Partition::Iid, &mut rng(9)).unwrap();
            assert_eq!(fed.len(), 4);
            assert!(!fed.is_empty());
        }
    }
}

//! The paper's four datasets as shape-matched synthetic presets.

use serde::{Deserialize, Serialize};

use crate::{FeatureKind, SyntheticSpec};

/// Shape-matched stand-ins for the paper's four evaluation datasets
/// (Table 1).
///
/// Each preset fixes the class count, a (scaled) feature dimensionality and
/// a difficulty profile chosen so the *relative* behaviour across the four
/// tasks mirrors the paper: Fashion-MNIST-like is the easiest, CIFAR-10-like
/// is moderate, CIFAR-100-like has many classes and low achievable accuracy,
/// and Purchase-100-like is high-dimensional sparse tabular data with many
/// classes.
///
/// Feature dimensionalities are scaled down from the raw pixel counts
/// (3072/784/600) because the stand-in MLPs don't need pixel redundancy; the
/// class counts — which drive task difficulty and prediction-entropy
/// behaviour — are kept at the paper's values. Use
/// [`SyntheticSpec::with_num_classes`]/[`with_input_dim`](SyntheticSpec::with_input_dim)
/// to scale further for quick runs.
///
/// # Examples
///
/// ```
/// use glmia_data::DataPreset;
///
/// let spec = DataPreset::Purchase100Like.spec();
/// assert_eq!(spec.num_classes(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPreset {
    /// CIFAR-10 stand-in: 10 classes, moderate separability.
    Cifar10Like,
    /// CIFAR-100 stand-in: 100 classes, low separability (paper tops out
    /// near 35% accuracy).
    Cifar100Like,
    /// Fashion-MNIST stand-in: 10 classes, high separability (paper tops
    /// out near 88%).
    FashionMnistLike,
    /// Purchase-100 stand-in: 100 classes over sparse binary tabular
    /// features.
    Purchase100Like,
}

impl DataPreset {
    /// All four presets in the paper's order.
    pub const ALL: [DataPreset; 4] = [
        DataPreset::Cifar10Like,
        DataPreset::Cifar100Like,
        DataPreset::FashionMnistLike,
        DataPreset::Purchase100Like,
    ];

    /// The synthetic spec for this preset.
    ///
    /// Every preset uses several *subclusters* per class: real classes are
    /// internally diverse, and that intra-class diversity is what makes a
    /// node's local shard individually memorable — the signal membership
    /// inference exploits. Difficulty knobs are tuned so each stand-in's
    /// achievable accuracy sits near its paper counterpart's.
    #[must_use]
    pub fn spec(self) -> SyntheticSpec {
        match self {
            DataPreset::Cifar10Like => SyntheticSpec::new(10, 48, FeatureKind::Gaussian)
                .expect("valid preset")
                .with_class_separation(0.6)
                .with_subclusters(6)
                .with_subcluster_spread(0.7)
                .with_noise_std(1.0)
                .with_label_noise(0.02),
            DataPreset::Cifar100Like => SyntheticSpec::new(100, 48, FeatureKind::Gaussian)
                .expect("valid preset")
                .with_class_separation(0.4)
                .with_subclusters(3)
                .with_subcluster_spread(0.5)
                .with_noise_std(1.0)
                .with_label_noise(0.05),
            DataPreset::FashionMnistLike => SyntheticSpec::new(10, 32, FeatureKind::Gaussian)
                .expect("valid preset")
                .with_class_separation(0.85)
                .with_subclusters(3)
                .with_subcluster_spread(0.45)
                .with_noise_std(1.0)
                .with_label_noise(0.01),
            DataPreset::Purchase100Like => SyntheticSpec::new(100, 96, FeatureKind::SparseBinary)
                .expect("valid preset")
                .with_class_separation(0.45)
                .with_subclusters(8)
                .with_subcluster_spread(0.4)
                .with_density(0.08)
                .with_label_noise(0.02),
        }
    }

    /// The name of the real dataset this preset stands in for.
    #[must_use]
    pub fn paper_name(self) -> &'static str {
        match self {
            DataPreset::Cifar10Like => "CIFAR-10",
            DataPreset::Cifar100Like => "CIFAR-100",
            DataPreset::FashionMnistLike => "Fashion-MNIST",
            DataPreset::Purchase100Like => "Purchase-100",
        }
    }
}

impl std::fmt::Display for DataPreset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DataPreset::Cifar10Like => "cifar10-like",
            DataPreset::Cifar100Like => "cifar100-like",
            DataPreset::FashionMnistLike => "fashion-mnist-like",
            DataPreset::Purchase100Like => "purchase100-like",
        };
        f.write_str(name)
    }
}

impl std::str::FromStr for DataPreset {
    type Err = String;

    /// Accepts the CLI short names and the `Display` forms.
    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw {
            "cifar10" | "cifar10-like" => Ok(DataPreset::Cifar10Like),
            "cifar100" | "cifar100-like" => Ok(DataPreset::Cifar100Like),
            "fashion" | "fashion-mnist-like" => Ok(DataPreset::FashionMnistLike),
            "purchase100" | "purchase100-like" => Ok(DataPreset::Purchase100Like),
            other => Err(format!(
                "unknown dataset '{other}' (expected cifar10|cifar100|fashion|purchase100)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_match_paper() {
        assert_eq!(DataPreset::Cifar10Like.spec().num_classes(), 10);
        assert_eq!(DataPreset::Cifar100Like.spec().num_classes(), 100);
        assert_eq!(DataPreset::FashionMnistLike.spec().num_classes(), 10);
        assert_eq!(DataPreset::Purchase100Like.spec().num_classes(), 100);
    }

    #[test]
    fn purchase_is_binary_tabular() {
        assert_eq!(
            DataPreset::Purchase100Like.spec().kind(),
            FeatureKind::SparseBinary
        );
    }

    #[test]
    fn all_lists_each_once() {
        assert_eq!(DataPreset::ALL.len(), 4);
        let mut names: Vec<String> = DataPreset::ALL.iter().map(|p| p.to_string()).collect();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn display_and_paper_names() {
        assert_eq!(DataPreset::Cifar10Like.to_string(), "cifar10-like");
        assert_eq!(DataPreset::Cifar10Like.paper_name(), "CIFAR-10");
    }
}

//! Error type for dataset construction and partitioning.

use std::error::Error;
use std::fmt;

/// Error returned on invalid dataset shapes, specs or partitions.
///
/// # Examples
///
/// ```
/// use glmia_data::Dataset;
/// use glmia_nn::Matrix;
///
/// let x = Matrix::zeros(2, 3);
/// let err = Dataset::new(x, vec![0], 2).unwrap_err();
/// assert!(err.to_string().contains("labels"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataError {
    message: String,
}

impl DataError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<DataError>();
    }
}

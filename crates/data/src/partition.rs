//! IID and Dirichlet non-IID partitioning of a dataset across nodes.

use glmia_dist::Dirichlet;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{DataError, Dataset};

/// How a global training set is distributed across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partition {
    /// Uniform equal shards (the paper's IID configuration, §3.1).
    Iid,
    /// Label-skewed shards: for each label `k`, node proportions are drawn
    /// from `Dir_N(β)` (the paper's non-IID configuration, §3.6). Lower `β`
    /// (≤ 0.1) yields higher label imbalance.
    Dirichlet {
        /// Concentration parameter β.
        beta: f64,
    },
    /// Quantity-skewed shards: shard *sizes* follow `Dir_N(β)` while labels
    /// stay IID within each shard (ablation axis beyond the paper).
    QuantitySkew {
        /// Concentration parameter β.
        beta: f64,
    },
    /// Pathological label split: each node holds at most this many classes
    /// (ablation axis beyond the paper).
    Pathological {
        /// Maximum distinct classes per node.
        classes_per_node: usize,
    },
}

impl std::fmt::Display for Partition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Partition::Iid => f.write_str("iid"),
            Partition::Dirichlet { beta } => write!(f, "dirichlet(β={beta})"),
            Partition::QuantitySkew { beta } => write!(f, "quantity-skew(β={beta})"),
            Partition::Pathological { classes_per_node } => {
                write!(f, "pathological(c={classes_per_node})")
            }
        }
    }
}

impl Partition {
    /// Applies the partition to `dataset`, producing one shard per node.
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] if `n_nodes == 0`, the dataset is too small to
    /// give every node at least one sample, or a Dirichlet parameter is
    /// invalid.
    pub fn apply<R: Rng + ?Sized>(
        self,
        dataset: &Dataset,
        n_nodes: usize,
        rng: &mut R,
    ) -> Result<Vec<Dataset>, DataError> {
        match self {
            Partition::Iid => partition_iid(dataset, n_nodes, rng),
            Partition::Dirichlet { beta } => partition_dirichlet(dataset, n_nodes, beta, rng),
            Partition::QuantitySkew { beta } => {
                crate::partition_quantity_skew(dataset, n_nodes, beta, rng)
            }
            Partition::Pathological { classes_per_node } => {
                crate::partition_pathological(dataset, n_nodes, classes_per_node, rng)
            }
        }
    }
}

/// Splits `dataset` into `n_nodes` near-equal IID shards after a uniform
/// shuffle.
///
/// # Errors
///
/// Returns [`DataError`] if `n_nodes == 0` or `dataset.len() < n_nodes`.
pub fn partition_iid<R: Rng + ?Sized>(
    dataset: &Dataset,
    n_nodes: usize,
    rng: &mut R,
) -> Result<Vec<Dataset>, DataError> {
    validate(dataset, n_nodes)?;
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    shuffle(&mut indices, rng);
    let base = dataset.len() / n_nodes;
    let extra = dataset.len() % n_nodes;
    let mut shards = Vec::with_capacity(n_nodes);
    let mut offset = 0;
    for node in 0..n_nodes {
        let size = base + usize::from(node < extra);
        shards.push(dataset.select(&indices[offset..offset + size]));
        offset += size;
    }
    Ok(shards)
}

/// Splits `dataset` into `n_nodes` label-skewed shards: for each class `k`,
/// the class's samples are distributed across nodes with proportions
/// `p ~ Dir_N(β)`.
///
/// A repair pass then guarantees every node holds at least two samples
/// (moving samples from the largest shards), since a node with an empty
/// shard can neither train nor be attacked.
///
/// # Errors
///
/// Returns [`DataError`] if `n_nodes == 0`, `dataset.len() < 2 * n_nodes`,
/// or `beta` is not finite and positive.
pub fn partition_dirichlet<R: Rng + ?Sized>(
    dataset: &Dataset,
    n_nodes: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Vec<Dataset>, DataError> {
    validate(dataset, n_nodes)?;
    if dataset.len() < 2 * n_nodes {
        return Err(DataError::new(format!(
            "dirichlet partition needs at least {} samples for {n_nodes} nodes, got {}",
            2 * n_nodes,
            dataset.len()
        )));
    }
    if n_nodes == 1 {
        return Ok(vec![dataset.clone()]);
    }
    let dir = Dirichlet::symmetric(beta, n_nodes)
        .map_err(|e| DataError::new(format!("invalid dirichlet β: {e}")))?;

    // Group sample indices by class.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes()];
    for (i, &y) in dataset.labels().iter().enumerate() {
        by_class[y].push(i);
    }

    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    for class_indices in by_class.iter_mut().filter(|c| !c.is_empty()) {
        shuffle(class_indices, rng);
        let p = dir.sample(rng);
        // Largest-remainder allocation of this class's samples to nodes.
        let total = class_indices.len();
        let mut counts: Vec<usize> = p.iter().map(|&pi| (pi * total as f64) as usize).collect();
        let mut assigned: usize = counts.iter().sum();
        // Distribute the remainder to the nodes with the largest fractional
        // parts.
        let mut fracs: Vec<(usize, f64)> = p
            .iter()
            .enumerate()
            .map(|(node, &pi)| (node, pi * total as f64 - counts[node] as f64))
            .collect();
        fracs.sort_by(|a, b| b.1.total_cmp(&a.1));
        let mut fi = 0;
        while assigned < total {
            counts[fracs[fi % n_nodes].0] += 1;
            assigned += 1;
            fi += 1;
        }
        let mut offset = 0;
        for (node, &count) in counts.iter().enumerate() {
            assignments[node].extend_from_slice(&class_indices[offset..offset + count]);
            offset += count;
        }
    }

    repair_min_shard_size(&mut assignments, 2, rng);
    Ok(assignments.iter().map(|idx| dataset.select(idx)).collect())
}

/// Moves samples from the largest shards until every shard has at least
/// `min` samples.
fn repair_min_shard_size<R: Rng + ?Sized>(assignments: &mut [Vec<usize>], min: usize, rng: &mut R) {
    loop {
        let Some(smallest) = (0..assignments.len()).min_by_key(|&i| assignments[i].len()) else {
            return;
        };
        if assignments[smallest].len() >= min {
            return;
        }
        let largest = (0..assignments.len())
            .max_by_key(|&i| assignments[i].len())
            .expect("non-empty");
        if assignments[largest].len() <= min {
            // Nothing left to move without violating the donor's minimum.
            return;
        }
        let take = rng.gen_range(0..assignments[largest].len());
        let sample = assignments[largest].swap_remove(take);
        assignments[smallest].push(sample);
    }
}

fn validate(dataset: &Dataset, n_nodes: usize) -> Result<(), DataError> {
    if n_nodes == 0 {
        return Err(DataError::new("cannot partition across zero nodes"));
    }
    if dataset.len() < n_nodes {
        return Err(DataError::new(format!(
            "{} samples cannot cover {n_nodes} nodes",
            dataset.len()
        )));
    }
    Ok(())
}

fn shuffle<R: Rng + ?Sized>(xs: &mut [usize], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeatureKind, SyntheticSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn sample_dataset(n: usize, classes: usize, seed: u64) -> Dataset {
        let spec = SyntheticSpec::new(classes, 4, FeatureKind::Gaussian).unwrap();
        let world = spec.sample_world(&mut rng(seed));
        world.sample(n, &mut rng(seed + 1))
    }

    #[test]
    fn iid_shards_cover_everything_equally() {
        let d = sample_dataset(103, 5, 0);
        let shards = partition_iid(&d, 10, &mut rng(2)).unwrap();
        assert_eq!(shards.len(), 10);
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, 103);
        // Shard sizes differ by at most one.
        let min = shards.iter().map(Dataset::len).min().unwrap();
        let max = shards.iter().map(Dataset::len).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn iid_rejects_bad_params() {
        let d = sample_dataset(5, 2, 1);
        assert!(partition_iid(&d, 0, &mut rng(0)).is_err());
        assert!(partition_iid(&d, 6, &mut rng(0)).is_err());
    }

    #[test]
    fn dirichlet_covers_everything() {
        let d = sample_dataset(200, 5, 3);
        let shards = partition_dirichlet(&d, 8, 0.5, &mut rng(4)).unwrap();
        let total: usize = shards.iter().map(Dataset::len).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn dirichlet_guarantees_min_shard_size() {
        let d = sample_dataset(100, 10, 5);
        for seed in 0..5 {
            let shards = partition_dirichlet(&d, 10, 0.05, &mut rng(seed)).unwrap();
            for (i, s) in shards.iter().enumerate() {
                assert!(s.len() >= 2, "seed {seed} node {i} got {} samples", s.len());
            }
        }
    }

    #[test]
    fn low_beta_is_more_skewed_than_high_beta() {
        // Measure label skew as the mean over nodes of the max class share.
        fn skew(shards: &[Dataset]) -> f64 {
            let per_node: Vec<f64> = shards
                .iter()
                .filter(|s| !s.is_empty())
                .map(|s| {
                    let counts = s.class_counts();
                    let max = *counts.iter().max().unwrap() as f64;
                    max / s.len() as f64
                })
                .collect();
            per_node.iter().sum::<f64>() / per_node.len() as f64
        }
        let d = sample_dataset(1000, 10, 6);
        let sharp = partition_dirichlet(&d, 10, 0.1, &mut rng(7)).unwrap();
        let flat = partition_dirichlet(&d, 10, 100.0, &mut rng(8)).unwrap();
        assert!(
            skew(&sharp) > skew(&flat) + 0.1,
            "sharp skew {} vs flat skew {}",
            skew(&sharp),
            skew(&flat)
        );
    }

    #[test]
    fn dirichlet_rejects_bad_params() {
        let d = sample_dataset(30, 3, 9);
        assert!(partition_dirichlet(&d, 0, 0.5, &mut rng(0)).is_err());
        assert!(partition_dirichlet(&d, 20, 0.5, &mut rng(0)).is_err());
        assert!(partition_dirichlet(&d, 5, -1.0, &mut rng(0)).is_err());
        assert!(partition_dirichlet(&d, 5, f64::NAN, &mut rng(0)).is_err());
    }

    #[test]
    fn single_node_gets_everything() {
        let d = sample_dataset(20, 3, 10);
        let shards = partition_dirichlet(&d, 1, 0.5, &mut rng(0)).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].len(), 20);
    }

    #[test]
    fn partition_enum_dispatches() {
        let d = sample_dataset(60, 3, 11);
        let iid = Partition::Iid.apply(&d, 4, &mut rng(1)).unwrap();
        let dir = Partition::Dirichlet { beta: 0.5 }
            .apply(&d, 4, &mut rng(1))
            .unwrap();
        assert_eq!(iid.len(), 4);
        assert_eq!(dir.len(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(Partition::Iid.to_string(), "iid");
        assert_eq!(
            Partition::Dirichlet { beta: 0.1 }.to_string(),
            "dirichlet(β=0.1)"
        );
        assert_eq!(
            Partition::QuantitySkew { beta: 0.5 }.to_string(),
            "quantity-skew(β=0.5)"
        );
        assert_eq!(
            Partition::Pathological {
                classes_per_node: 2
            }
            .to_string(),
            "pathological(c=2)"
        );
    }

    #[test]
    fn new_partition_variants_dispatch() {
        let d = sample_dataset(120, 6, 20);
        let q = Partition::QuantitySkew { beta: 0.3 }
            .apply(&d, 4, &mut rng(1))
            .unwrap();
        assert_eq!(q.iter().map(Dataset::len).sum::<usize>(), 120);
        let p = Partition::Pathological {
            classes_per_node: 2,
        }
        .apply(&d, 4, &mut rng(2))
        .unwrap();
        assert_eq!(p.iter().map(Dataset::len).sum::<usize>(), 120);
    }
}

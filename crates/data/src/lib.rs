//! Synthetic datasets and per-node partitioning for gossip-learning
//! experiments.
//!
//! The paper evaluates on CIFAR-10, CIFAR-100, Fashion-MNIST and
//! Purchase-100 (Table 1). Those datasets are not available to this
//! reproduction, so this crate generates *shape-matched synthetic stand-ins*:
//! class-conditional Gaussian mixtures (image-like presets) and sparse
//! binary tabular data (Purchase-100-like), with a difficulty knob that
//! controls how separable classes are. What the paper's phenomena need —
//! per-node shards whose statistics differ from the global distribution, a
//! train/test gap that the MPE attack can exploit — are properties of the
//! *sampling and partitioning*, which this crate controls exactly.
//!
//! Partitioners implement the paper's two regimes:
//!
//! * [`Partition::Iid`] — uniform equal shards (§3.1);
//! * [`Partition::Dirichlet`] — label-skewed shards where each label's mass
//!   over nodes is drawn from `Dir_N(β)` (§3.6); lower `β` means more
//!   heterogeneity.
//!
//! # Examples
//!
//! ```
//! use glmia_data::{DataPreset, Federation, Partition};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let spec = DataPreset::Cifar10Like.spec().with_num_classes(4).with_input_dim(8);
//! let fed = Federation::build(&spec, 6, 30, 10, Partition::Iid, &mut rng)?;
//! assert_eq!(fed.nodes().len(), 6);
//! assert_eq!(fed.node(0).train.len(), 30);
//! # Ok::<(), glmia_data::DataError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod error;
mod federation;
mod partition;
mod presets;
mod skew;
mod synthetic;

pub use dataset::Dataset;
pub use error::DataError;
pub use federation::{Federation, NodeData};
pub use partition::{partition_dirichlet, partition_iid, Partition};
pub use presets::DataPreset;
pub use skew::{partition_pathological, partition_quantity_skew};
pub use synthetic::{FeatureKind, SyntheticSpec, SyntheticWorld};

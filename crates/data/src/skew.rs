//! Additional non-IID partitioners beyond Dirichlet label skew.
//!
//! The paper's non-IID experiments use Dirichlet label imbalance (§3.6);
//! these two partitioners cover the other heterogeneity axes studied in the
//! federated-learning literature, so ablations can separate *label* skew
//! from *quantity* skew and the pathological few-classes-per-node regime.

use glmia_dist::Dirichlet;
use rand::Rng;

use crate::{DataError, Dataset};

/// Quantity skew: shard *sizes* are drawn from `Dir_N(β)` while the label
/// distribution inside every shard stays IID. Lower `β` concentrates data
/// on fewer nodes.
///
/// Every node is guaranteed at least 2 samples (repair from the largest
/// shard).
///
/// # Errors
///
/// Returns [`DataError`] if `n_nodes == 0`, `dataset.len() < 2 * n_nodes`,
/// or `beta` is invalid.
///
/// # Examples
///
/// ```
/// use glmia_data::{partition_quantity_skew, FeatureKind, SyntheticSpec};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let world = SyntheticSpec::new(4, 4, FeatureKind::Gaussian)?.sample_world(&mut rng);
/// let data = world.sample(200, &mut rng);
/// let shards = partition_quantity_skew(&data, 8, 0.3, &mut rng)?;
/// assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 200);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn partition_quantity_skew<R: Rng + ?Sized>(
    dataset: &Dataset,
    n_nodes: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Vec<Dataset>, DataError> {
    if n_nodes == 0 {
        return Err(DataError::new("cannot partition across zero nodes"));
    }
    if dataset.len() < 2 * n_nodes {
        return Err(DataError::new(format!(
            "quantity skew needs at least {} samples for {n_nodes} nodes, got {}",
            2 * n_nodes,
            dataset.len()
        )));
    }
    if n_nodes == 1 {
        return Ok(vec![dataset.clone()]);
    }
    let dir = Dirichlet::symmetric(beta, n_nodes)
        .map_err(|e| DataError::new(format!("invalid quantity-skew β: {e}")))?;
    let proportions = dir.sample(rng);

    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    for i in (1..indices.len()).rev() {
        let j = rng.gen_range(0..=i);
        indices.swap(i, j);
    }

    // Largest-remainder allocation of the shuffled pool.
    let total = dataset.len();
    let mut counts: Vec<usize> = proportions
        .iter()
        .map(|&p| (p * total as f64) as usize)
        .collect();
    let mut assigned: usize = counts.iter().sum();
    let mut fracs: Vec<(usize, f64)> = proportions
        .iter()
        .enumerate()
        .map(|(node, &p)| (node, p * total as f64 - counts[node] as f64))
        .collect();
    fracs.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut fi = 0;
    while assigned < total {
        counts[fracs[fi % n_nodes].0] += 1;
        assigned += 1;
        fi += 1;
    }
    // Minimum-size repair: move from the largest shard.
    loop {
        let smallest = (0..n_nodes).min_by_key(|&i| counts[i]).expect("nodes > 0");
        if counts[smallest] >= 2 {
            break;
        }
        let largest = (0..n_nodes).max_by_key(|&i| counts[i]).expect("nodes > 0");
        if counts[largest] <= 2 {
            break;
        }
        counts[largest] -= 1;
        counts[smallest] += 1;
    }

    let mut shards = Vec::with_capacity(n_nodes);
    let mut offset = 0;
    for &count in &counts {
        shards.push(dataset.select(&indices[offset..offset + count]));
        offset += count;
    }
    Ok(shards)
}

/// Pathological label partition (Shokri/McMahan style): each node receives
/// samples from at most `classes_per_node` classes. The extreme non-IID
/// regime where local distributions share almost no support.
///
/// # Errors
///
/// Returns [`DataError`] if `n_nodes == 0`, `classes_per_node == 0`,
/// `classes_per_node > num_classes`, or the dataset is too small to give
/// every node at least one sample.
pub fn partition_pathological<R: Rng + ?Sized>(
    dataset: &Dataset,
    n_nodes: usize,
    classes_per_node: usize,
    rng: &mut R,
) -> Result<Vec<Dataset>, DataError> {
    if n_nodes == 0 {
        return Err(DataError::new("cannot partition across zero nodes"));
    }
    if classes_per_node == 0 || classes_per_node > dataset.num_classes() {
        return Err(DataError::new(format!(
            "classes_per_node must be in 1..={}, got {classes_per_node}",
            dataset.num_classes()
        )));
    }
    if dataset.len() < n_nodes {
        return Err(DataError::new(format!(
            "{} samples cannot cover {n_nodes} nodes",
            dataset.len()
        )));
    }
    // Split each class's samples into contiguous shards; deal shards to
    // nodes round-robin over a random node order so every node collects
    // `classes_per_node` shards.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes()];
    for (i, &y) in dataset.labels().iter().enumerate() {
        by_class[y].push(i);
    }
    let total_shards = n_nodes * classes_per_node;
    // Build the shard list: distribute shard quotas over the non-empty
    // classes proportionally to their sample counts.
    let mut shard_pool: Vec<Vec<usize>> = Vec::with_capacity(total_shards);
    let nonempty: Vec<usize> = (0..dataset.num_classes())
        .filter(|&c| !by_class[c].is_empty())
        .collect();
    if nonempty.is_empty() {
        return Err(DataError::new("dataset has no samples"));
    }
    for (rank, &c) in nonempty.iter().enumerate() {
        // Spread shard counts as evenly as possible across classes.
        let quota =
            total_shards / nonempty.len() + usize::from(rank < total_shards % nonempty.len());
        let class = &mut by_class[c];
        for i in (1..class.len()).rev() {
            let j = rng.gen_range(0..=i);
            class.swap(i, j);
        }
        let quota = quota.max(1).min(class.len());
        let base = class.len() / quota;
        let extra = class.len() % quota;
        let mut offset = 0;
        for s in 0..quota {
            let size = base + usize::from(s < extra);
            shard_pool.push(class[offset..offset + size].to_vec());
            offset += size;
        }
    }
    // Random deal: shuffle shards, hand them out round-robin.
    for i in (1..shard_pool.len()).rev() {
        let j = rng.gen_range(0..=i);
        shard_pool.swap(i, j);
    }
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); n_nodes];
    for (s, shard) in shard_pool.into_iter().enumerate() {
        assignments[s % n_nodes].extend(shard);
    }
    // A node can still end up empty when shard_pool < n_nodes; repair by
    // splitting the largest assignment.
    while let Some(empty) = assignments.iter().position(Vec::is_empty) {
        let largest = (0..n_nodes)
            .max_by_key(|&i| assignments[i].len())
            .expect("nodes > 0");
        if assignments[largest].len() < 2 {
            return Err(DataError::new("not enough samples to give every node data"));
        }
        let half = assignments[largest].len() / 2;
        let moved = assignments[largest].split_off(half);
        assignments[empty] = moved;
    }
    Ok(assignments.iter().map(|idx| dataset.select(idx)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeatureKind, SyntheticSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn sample_dataset(n: usize, classes: usize, seed: u64) -> Dataset {
        let spec = SyntheticSpec::new(classes, 4, FeatureKind::Gaussian).unwrap();
        let world = spec.sample_world(&mut rng(seed));
        world.sample(n, &mut rng(seed + 1))
    }

    #[test]
    fn quantity_skew_conserves_and_repairs() {
        let d = sample_dataset(300, 5, 0);
        for seed in 0..4 {
            let shards = partition_quantity_skew(&d, 10, 0.1, &mut rng(seed)).unwrap();
            assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), 300);
            assert!(shards.iter().all(|s| s.len() >= 2));
        }
    }

    #[test]
    fn quantity_skew_low_beta_is_more_imbalanced() {
        let d = sample_dataset(1000, 5, 2);
        let max_share =
            |shards: &[Dataset]| shards.iter().map(Dataset::len).max().unwrap() as f64 / 1000.0;
        let sharp = partition_quantity_skew(&d, 10, 0.1, &mut rng(3)).unwrap();
        let flat = partition_quantity_skew(&d, 10, 100.0, &mut rng(3)).unwrap();
        assert!(max_share(&sharp) > max_share(&flat));
    }

    #[test]
    fn quantity_skew_validates() {
        let d = sample_dataset(10, 2, 4);
        assert!(partition_quantity_skew(&d, 0, 0.5, &mut rng(0)).is_err());
        assert!(partition_quantity_skew(&d, 6, 0.5, &mut rng(0)).is_err());
        assert!(partition_quantity_skew(&d, 4, -1.0, &mut rng(0)).is_err());
    }

    #[test]
    fn pathological_limits_classes_per_node() {
        let d = sample_dataset(400, 10, 5);
        let shards = partition_pathological(&d, 8, 2, &mut rng(6)).unwrap();
        assert_eq!(shards.iter().map(Dataset::len).sum::<usize>(), 400);
        for (i, s) in shards.iter().enumerate() {
            let distinct = s.class_counts().iter().filter(|&&c| c > 0).count();
            assert!(
                distinct <= 3,
                "node {i} holds {distinct} classes (want ≈ 2)"
            );
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn pathological_validates() {
        let d = sample_dataset(40, 4, 7);
        assert!(partition_pathological(&d, 0, 2, &mut rng(0)).is_err());
        assert!(partition_pathological(&d, 4, 0, &mut rng(0)).is_err());
        assert!(partition_pathological(&d, 4, 5, &mut rng(0)).is_err());
        assert!(partition_pathological(&d, 50, 2, &mut rng(0)).is_err());
    }

    #[test]
    fn pathological_more_skewed_than_iid() {
        let d = sample_dataset(600, 10, 8);
        let skew = |shards: &[Dataset]| -> f64 {
            let per: Vec<f64> = shards
                .iter()
                .map(|s| *s.class_counts().iter().max().unwrap() as f64 / s.len() as f64)
                .collect();
            per.iter().sum::<f64>() / per.len() as f64
        };
        let path = partition_pathological(&d, 6, 1, &mut rng(9)).unwrap();
        let iid = crate::partition_iid(&d, 6, &mut rng(9)).unwrap();
        assert!(skew(&path) > skew(&iid) + 0.3);
    }
}

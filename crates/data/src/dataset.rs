//! Labelled dataset container.

use glmia_nn::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::DataError;

/// A labelled classification dataset: a feature matrix (one sample per row)
/// and integer labels.
///
/// # Examples
///
/// ```
/// use glmia_data::Dataset;
/// use glmia_nn::Matrix;
///
/// let x = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]])?;
/// let d = Dataset::new(x, vec![0, 1], 2)?;
/// assert_eq!(d.len(), 2);
/// assert_eq!(d.input_dim(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    features: Matrix,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating labels against the class count.
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] if `labels.len() != features.rows()`, any label
    /// is `>= num_classes`, or `num_classes < 2`.
    pub fn new(
        features: Matrix,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, DataError> {
        if num_classes < 2 {
            return Err(DataError::new("num_classes must be at least 2"));
        }
        if labels.len() != features.rows() {
            return Err(DataError::new(format!(
                "labels ({}) must match feature rows ({})",
                labels.len(),
                features.rows()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&y| y >= num_classes) {
            return Err(DataError::new(format!(
                "label {bad} out of range for {num_classes} classes"
            )));
        }
        Ok(Self {
            features,
            labels,
            num_classes,
        })
    }

    /// An empty dataset with the given feature width and class count.
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] if `num_classes < 2`.
    pub fn empty(input_dim: usize, num_classes: usize) -> Result<Self, DataError> {
        Self::new(Matrix::zeros(0, input_dim), Vec::new(), num_classes)
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has zero samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The feature matrix (one sample per row).
    #[must_use]
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The labels.
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-class sample counts.
    #[must_use]
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &y in &self.labels {
            counts[y] += 1;
        }
        counts
    }

    /// A new dataset holding the given sample indices (duplicates allowed).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn select(&self, indices: &[usize]) -> Self {
        Self {
            features: self.features.select_rows(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            num_classes: self.num_classes,
        }
    }

    /// Splits into `(first, second)` where `first` holds a `fraction` share
    /// of the samples, after shuffling with `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn split<R: Rng + ?Sized>(&self, fraction: f64, rng: &mut R) -> (Self, Self) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction {fraction} outside [0, 1]"
        );
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in (1..indices.len()).rev() {
            let j = rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        let cut = (self.len() as f64 * fraction).round() as usize;
        (self.select(&indices[..cut]), self.select(&indices[cut..]))
    }

    /// Concatenates two datasets.
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] if the feature widths or class counts differ.
    pub fn concat(&self, other: &Dataset) -> Result<Self, DataError> {
        if self.input_dim() != other.input_dim() {
            return Err(DataError::new(format!(
                "cannot concat input dims {} and {}",
                self.input_dim(),
                other.input_dim()
            )));
        }
        if self.num_classes != other.num_classes {
            return Err(DataError::new(format!(
                "cannot concat class counts {} and {}",
                self.num_classes, other.num_classes
            )));
        }
        let mut data = self.features.as_slice().to_vec();
        data.extend_from_slice(other.features.as_slice());
        let features = Matrix::from_vec(self.len() + other.len(), self.input_dim(), data)
            .expect("dimensions are consistent");
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        Ok(Self {
            features,
            labels,
            num_classes: self.num_classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ])
        .unwrap();
        Dataset::new(x, vec![0, 1, 1, 0], 2).unwrap()
    }

    #[test]
    fn new_validates() {
        let x = Matrix::zeros(2, 2);
        assert!(Dataset::new(x.clone(), vec![0], 2).is_err());
        assert!(Dataset::new(x.clone(), vec![0, 2], 2).is_err());
        assert!(Dataset::new(x.clone(), vec![0, 1], 1).is_err());
        assert!(Dataset::new(x, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn class_counts_sum_to_len() {
        let d = toy();
        let counts = d.class_counts();
        assert_eq!(counts, vec![2, 2]);
        assert_eq!(counts.iter().sum::<usize>(), d.len());
    }

    #[test]
    fn select_keeps_feature_label_pairing() {
        let d = toy();
        let s = d.select(&[3, 0]);
        assert_eq!(s.labels(), &[0, 0]);
        assert_eq!(s.features().row(0), &[1.0, 1.0]);
        assert_eq!(s.features().row(1), &[0.0, 0.0]);
    }

    #[test]
    fn split_partitions_every_sample() {
        let d = toy();
        let (a, b) = d.split(0.5, &mut StdRng::seed_from_u64(0));
        assert_eq!(a.len() + b.len(), d.len());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn split_extremes() {
        let d = toy();
        let (a, b) = d.split(0.0, &mut StdRng::seed_from_u64(0));
        assert!(a.is_empty());
        assert_eq!(b.len(), 4);
        let (a, b) = d.split(1.0, &mut StdRng::seed_from_u64(0));
        assert_eq!(a.len(), 4);
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn split_bad_fraction_panics() {
        toy().split(1.5, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn concat_appends() {
        let d = toy();
        let c = d.concat(&d).unwrap();
        assert_eq!(c.len(), 8);
        assert_eq!(c.labels()[4..], d.labels()[..]);
    }

    #[test]
    fn concat_rejects_mismatched() {
        let d = toy();
        let other = Dataset::new(Matrix::zeros(1, 3), vec![0], 2).unwrap();
        assert!(d.concat(&other).is_err());
        let other = Dataset::new(Matrix::zeros(1, 2), vec![0], 3).unwrap();
        assert!(d.concat(&other).is_err());
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::empty(4, 3).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.input_dim(), 4);
        assert_eq!(d.num_classes(), 3);
    }
}

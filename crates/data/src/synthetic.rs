//! Shape-matched synthetic dataset generators.

use glmia_dist::Normal;
use glmia_nn::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{DataError, Dataset};

/// The kind of feature space a [`SyntheticSpec`] generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Dense real-valued features from a class-conditional Gaussian mixture
    /// (stand-in for image datasets: each class has a mean vector, samples
    /// scatter around it).
    #[default]
    Gaussian,
    /// Sparse `{0, 1}` features from class-conditional Bernoulli prototypes
    /// (stand-in for Purchase-100-style tabular purchase records).
    SparseBinary,
}

impl std::fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureKind::Gaussian => f.write_str("gaussian"),
            FeatureKind::SparseBinary => f.write_str("sparse-binary"),
        }
    }
}

/// Specification of a synthetic classification task.
///
/// The generator draws a random per-class prototype, then samples each
/// example around its class prototype. Two knobs control task difficulty,
/// and therefore how much a small locally-trained model overfits — the
/// quantity the MPE attack exploits:
///
/// * [`class_separation`](Self::with_class_separation) — how far apart class
///   prototypes sit relative to the within-class noise;
/// * [`label_noise`](Self::with_label_noise) — the fraction of labels
///   resampled uniformly, which bounds achievable test accuracy and forces a
///   train/test gap under memorization.
///
/// # Examples
///
/// ```
/// use glmia_data::{FeatureKind, SyntheticSpec};
/// use rand::SeedableRng;
///
/// let spec = SyntheticSpec::new(10, 32, FeatureKind::Gaussian)?
///     .with_class_separation(1.5)
///     .with_label_noise(0.05);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let world = spec.sample_world(&mut rng);
/// let d = world.sample(100, &mut rng);
/// assert_eq!(d.len(), 100);
/// assert_eq!(d.input_dim(), 32);
/// # Ok::<(), glmia_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticSpec {
    num_classes: usize,
    input_dim: usize,
    kind: FeatureKind,
    class_separation: f64,
    noise_std: f64,
    label_noise: f64,
    /// Bernoulli base rate for sparse-binary prototypes.
    density: f64,
    /// Sub-modes per class (1 = unimodal).
    subclusters: usize,
    /// Spread of subcluster prototypes around the class prototype.
    subcluster_spread: f64,
}

impl SyntheticSpec {
    /// Creates a spec with default difficulty (separation 1.0, noise 1.0, no
    /// label noise, 10% binary density).
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] if `num_classes < 2` or `input_dim == 0`.
    pub fn new(num_classes: usize, input_dim: usize, kind: FeatureKind) -> Result<Self, DataError> {
        if num_classes < 2 {
            return Err(DataError::new("num_classes must be at least 2"));
        }
        if input_dim == 0 {
            return Err(DataError::new("input_dim must be positive"));
        }
        Ok(Self {
            num_classes,
            input_dim,
            kind,
            class_separation: 1.0,
            noise_std: 1.0,
            label_noise: 0.0,
            density: 0.1,
            subclusters: 1,
            subcluster_spread: 0.5,
        })
    }

    /// Overrides the class count (used to scale presets down).
    ///
    /// # Panics
    ///
    /// Panics if `num_classes < 2`.
    #[must_use]
    pub fn with_num_classes(mut self, num_classes: usize) -> Self {
        assert!(num_classes >= 2, "num_classes must be at least 2");
        self.num_classes = num_classes;
        self
    }

    /// Overrides the feature dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `input_dim == 0`.
    #[must_use]
    pub fn with_input_dim(mut self, input_dim: usize) -> Self {
        assert!(input_dim > 0, "input_dim must be positive");
        self.input_dim = input_dim;
        self
    }

    /// Sets the distance scale between class prototypes (larger = easier).
    ///
    /// # Panics
    ///
    /// Panics if negative or not finite.
    #[must_use]
    pub fn with_class_separation(mut self, sep: f64) -> Self {
        assert!(
            sep.is_finite() && sep >= 0.0,
            "separation must be non-negative"
        );
        self.class_separation = sep;
        self
    }

    /// Sets the within-class noise standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if non-positive or not finite.
    #[must_use]
    pub fn with_noise_std(mut self, std: f64) -> Self {
        assert!(std.is_finite() && std > 0.0, "noise std must be positive");
        self.noise_std = std;
        self
    }

    /// Sets the fraction of labels resampled uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if outside `[0, 1]`.
    #[must_use]
    pub fn with_label_noise(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "label noise must be in [0, 1]");
        self.label_noise = p;
        self
    }

    /// Sets the number of sub-modes per class.
    ///
    /// Real image/tabular classes are internally diverse: knowing the class
    /// does not mean having seen a sample's *neighborhood*. Subclusters
    /// reproduce that: each class is a mixture of `m` prototypes, so
    /// within-class generalization requires having trained on the right
    /// sub-mode — the sample-level memorization signal membership
    /// inference feeds on.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    #[must_use]
    pub fn with_subclusters(mut self, m: usize) -> Self {
        assert!(m > 0, "subclusters must be positive");
        self.subclusters = m;
        self
    }

    /// Sets how far subcluster prototypes spread around their class
    /// prototype. For Gaussian worlds this is a standard deviation; for
    /// sparse-binary worlds it is the fraction of feature probabilities
    /// re-randomized per subcluster.
    ///
    /// # Panics
    ///
    /// Panics if negative or not finite.
    #[must_use]
    pub fn with_subcluster_spread(mut self, spread: f64) -> Self {
        assert!(
            spread.is_finite() && spread >= 0.0,
            "subcluster spread must be non-negative"
        );
        self.subcluster_spread = spread;
        self
    }

    /// Sets the Bernoulli base rate used by sparse-binary prototypes.
    ///
    /// # Panics
    ///
    /// Panics if outside `(0, 1)`.
    #[must_use]
    pub fn with_density(mut self, density: f64) -> Self {
        assert!(density > 0.0 && density < 1.0, "density must be in (0, 1)");
        self.density = density;
        self
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Feature kind.
    #[must_use]
    pub fn kind(&self) -> FeatureKind {
        self.kind
    }

    /// Label-noise fraction.
    #[must_use]
    pub fn label_noise(&self) -> f64 {
        self.label_noise
    }

    /// Draws the world's class (and per-class subcluster) prototypes; the
    /// resulting [`SyntheticWorld`] can then generate any number of IID
    /// datasets from the same underlying distribution (train shards, local
    /// test sets, the global test set).
    pub fn sample_world<R: Rng + ?Sized>(&self, rng: &mut R) -> SyntheticWorld {
        let normal = Normal::standard();
        let prototypes: Vec<Vec<Vec<f32>>> = match self.kind {
            FeatureKind::Gaussian => (0..self.num_classes)
                .map(|_| {
                    let class_mean: Vec<f64> = (0..self.input_dim)
                        .map(|_| normal.sample(rng) * self.class_separation)
                        .collect();
                    (0..self.subclusters)
                        .map(|_| {
                            class_mean
                                .iter()
                                .map(|&m| (m + normal.sample(rng) * self.subcluster_spread) as f32)
                                .collect()
                        })
                        .collect()
                })
                .collect(),
            FeatureKind::SparseBinary => (0..self.num_classes)
                .map(|_| {
                    let class_proto: Vec<f64> = (0..self.input_dim)
                        .map(|_| {
                            // Each class flips a subset of features to be
                            // "likely on": base density elsewhere.
                            let on = rng.gen_bool((self.density * 4.0).min(0.9));
                            if on {
                                0.5 + 0.5 * self.class_separation.min(1.0)
                            } else {
                                self.density
                            }
                        })
                        .collect();
                    let rerand = self.subcluster_spread.clamp(0.0, 1.0);
                    (0..self.subclusters)
                        .map(|sub| {
                            class_proto
                                .iter()
                                .map(|&p| {
                                    // First subcluster keeps the class
                                    // prototype; others re-randomize a
                                    // `spread` fraction of features.
                                    if sub > 0 && rng.gen_bool(rerand) {
                                        let on = rng.gen_bool((self.density * 4.0).min(0.9));
                                        if on {
                                            0.5 + 0.5 * self.class_separation.min(1.0)
                                        } else {
                                            self.density
                                        }
                                    } else {
                                        p
                                    }
                                })
                                .map(|p| p as f32)
                                .collect()
                        })
                        .collect()
                })
                .collect(),
        };
        SyntheticWorld {
            spec: self.clone(),
            prototypes,
        }
    }
}

/// A concrete synthetic data distribution: a [`SyntheticSpec`] plus the
/// drawn per-class prototypes.
///
/// All shards sampled from one world share the same class structure, exactly
/// like shards of one real dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticWorld {
    spec: SyntheticSpec,
    /// Prototype vectors indexed `[class][subcluster]`: Gaussian means, or
    /// Bernoulli probabilities for sparse-binary worlds.
    prototypes: Vec<Vec<Vec<f32>>>,
}

impl SyntheticWorld {
    /// The generating spec.
    #[must_use]
    pub fn spec(&self) -> &SyntheticSpec {
        &self.spec
    }

    /// Samples `n` labelled examples with uniform class priors.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Dataset {
        let labels: Vec<usize> = (0..n)
            .map(|_| rng.gen_range(0..self.spec.num_classes))
            .collect();
        self.sample_with_labels(&labels, rng)
    }

    /// Samples one example per entry of `labels`, with label noise applied.
    ///
    /// # Panics
    ///
    /// Panics if any label is out of range.
    pub fn sample_with_labels<R: Rng + ?Sized>(&self, labels: &[usize], rng: &mut R) -> Dataset {
        let dim = self.spec.input_dim;
        let mut data = Vec::with_capacity(labels.len() * dim);
        let normal = Normal::new(0.0, self.spec.noise_std).expect("validated std");
        let mut noisy_labels = Vec::with_capacity(labels.len());
        for &y in labels {
            assert!(y < self.spec.num_classes, "label {y} out of range");
            let sub = rng.gen_range(0..self.spec.subclusters);
            let proto = &self.prototypes[y][sub];
            match self.spec.kind {
                FeatureKind::Gaussian => {
                    for &m in proto {
                        data.push(m + normal.sample(rng) as f32);
                    }
                }
                FeatureKind::SparseBinary => {
                    for &p in proto {
                        data.push(if rng.gen_bool(f64::from(p).clamp(0.0, 1.0)) {
                            1.0
                        } else {
                            0.0
                        });
                    }
                }
            }
            let final_label = if self.spec.label_noise > 0.0 && rng.gen_bool(self.spec.label_noise)
            {
                rng.gen_range(0..self.spec.num_classes)
            } else {
                y
            };
            noisy_labels.push(final_label);
        }
        let features = Matrix::from_vec(labels.len(), dim, data).expect("consistent dims");
        Dataset::new(features, noisy_labels, self.spec.num_classes).expect("labels in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn spec_validates() {
        assert!(SyntheticSpec::new(1, 4, FeatureKind::Gaussian).is_err());
        assert!(SyntheticSpec::new(2, 0, FeatureKind::Gaussian).is_err());
        assert!(SyntheticSpec::new(2, 4, FeatureKind::Gaussian).is_ok());
    }

    #[test]
    fn sample_has_requested_shape() {
        let spec = SyntheticSpec::new(3, 5, FeatureKind::Gaussian).unwrap();
        let world = spec.sample_world(&mut rng(0));
        let d = world.sample(17, &mut rng(1));
        assert_eq!(d.len(), 17);
        assert_eq!(d.input_dim(), 5);
        assert_eq!(d.num_classes(), 3);
    }

    #[test]
    fn binary_features_are_zero_one() {
        let spec = SyntheticSpec::new(4, 16, FeatureKind::SparseBinary).unwrap();
        let world = spec.sample_world(&mut rng(2));
        let d = world.sample(50, &mut rng(3));
        assert!(d
            .features()
            .as_slice()
            .iter()
            .all(|&x| x == 0.0 || x == 1.0));
    }

    #[test]
    fn separated_classes_are_linearly_learnable() {
        // High separation, low noise: a linear model should fit quickly —
        // the generator really produces class structure.
        use glmia_nn::{Mlp, MlpSpec, Sgd};
        let spec = SyntheticSpec::new(3, 8, FeatureKind::Gaussian)
            .unwrap()
            .with_class_separation(4.0)
            .with_noise_std(0.5);
        let world = spec.sample_world(&mut rng(4));
        let train = world.sample(150, &mut rng(5));
        let test = world.sample(150, &mut rng(6));
        let mspec = MlpSpec::linear(8, 3).unwrap();
        let mut m = Mlp::new(&mspec, &mut rng(7));
        let mut opt = Sgd::new(0.1);
        let mut r = rng(8);
        for _ in 0..30 {
            m.train_epoch(train.features(), train.labels(), 16, &mut opt, &mut r);
        }
        let acc = m.accuracy(test.features(), test.labels());
        assert!(acc > 0.9, "test accuracy was {acc}");
    }

    #[test]
    fn subclusters_make_within_class_generalization_harder() {
        // Train a small model on a handful of samples; with unimodal
        // classes it generalizes within-class, with many subclusters it
        // cannot cover unseen sub-modes — the sample-level memorization
        // regime membership inference exploits.
        use glmia_nn::{Mlp, MlpSpec, Sgd};
        let gap_for = |subclusters: usize, seed: u64| -> f32 {
            let spec = SyntheticSpec::new(6, 16, FeatureKind::Gaussian)
                .unwrap()
                .with_class_separation(0.8)
                .with_subclusters(subclusters)
                .with_subcluster_spread(0.9);
            let world = spec.sample_world(&mut rng(seed));
            let train = world.sample(48, &mut rng(seed + 1));
            let test = world.sample(200, &mut rng(seed + 2));
            let mspec = MlpSpec::new(16, &[32], 6, glmia_nn::Activation::Relu).unwrap();
            let mut m = Mlp::new(&mspec, &mut rng(seed + 3));
            let mut opt = Sgd::new(0.05).with_momentum(0.9);
            let mut r = rng(seed + 4);
            for _ in 0..80 {
                m.train_epoch(train.features(), train.labels(), 16, &mut opt, &mut r);
            }
            m.accuracy(train.features(), train.labels())
                - m.accuracy(test.features(), test.labels())
        };
        let unimodal: f32 = (0..3).map(|s| gap_for(1, 100 + s)).sum::<f32>() / 3.0;
        let multimodal: f32 = (0..3).map(|s| gap_for(8, 200 + s)).sum::<f32>() / 3.0;
        assert!(
            multimodal > unimodal + 0.05,
            "expected larger generalization gap with subclusters: {multimodal} vs {unimodal}"
        );
    }

    #[test]
    fn subcluster_builder_validates() {
        let spec = SyntheticSpec::new(3, 4, FeatureKind::Gaussian).unwrap();
        let s = spec.clone().with_subclusters(5).with_subcluster_spread(0.3);
        let world = s.sample_world(&mut rng(0));
        let d = world.sample(20, &mut rng(1));
        assert_eq!(d.len(), 20);
    }

    #[test]
    #[should_panic(expected = "subclusters must be positive")]
    fn zero_subclusters_panics() {
        let _ = SyntheticSpec::new(3, 4, FeatureKind::Gaussian)
            .unwrap()
            .with_subclusters(0);
    }

    #[test]
    fn label_noise_perturbs_labels() {
        let spec = SyntheticSpec::new(10, 4, FeatureKind::Gaussian)
            .unwrap()
            .with_label_noise(0.5);
        let world = spec.sample_world(&mut rng(9));
        let requested: Vec<usize> = vec![0; 1000];
        let d = world.sample_with_labels(&requested, &mut rng(10));
        let flipped = d.labels().iter().filter(|&&y| y != 0).count();
        // Half are resampled uniformly over 10 classes: ~45% end up ≠ 0.
        assert!((300..600).contains(&flipped), "flipped {flipped} of 1000");
    }

    #[test]
    fn worlds_differ_but_are_seed_deterministic() {
        let spec = SyntheticSpec::new(3, 4, FeatureKind::Gaussian).unwrap();
        let a = spec.sample_world(&mut rng(11));
        let b = spec.sample_world(&mut rng(11));
        let c = spec.sample_world(&mut rng(12));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn builder_overrides_apply() {
        let spec = SyntheticSpec::new(10, 32, FeatureKind::Gaussian)
            .unwrap()
            .with_num_classes(4)
            .with_input_dim(8)
            .with_label_noise(0.1);
        assert_eq!(spec.num_classes(), 4);
        assert_eq!(spec.input_dim(), 8);
        assert_eq!(spec.label_noise(), 0.1);
    }

    #[test]
    #[should_panic(expected = "label noise must be in [0, 1]")]
    fn bad_label_noise_panics() {
        let _ = SyntheticSpec::new(2, 2, FeatureKind::Gaussian)
            .unwrap()
            .with_label_noise(1.5);
    }
}

//! Privacy/utility tradeoff curves and Pareto fronts.

use serde::{Deserialize, Serialize};

/// One evaluation point on a privacy/utility tradeoff curve (one per
/// evaluated round in the paper's Figures 2/3/5/6): a utility value to
/// maximize and a vulnerability value to minimize.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// The 1-based round the point was measured at.
    pub round: usize,
    /// Utility (e.g. mean test accuracy) — higher is better.
    pub utility: f64,
    /// Privacy risk (e.g. mean MIA accuracy) — lower is better.
    pub vulnerability: f64,
}

/// Extracts the Pareto front of a tradeoff curve: points for which no other
/// point has both higher utility and lower vulnerability. Returned sorted by
/// increasing utility.
///
/// # Examples
///
/// ```
/// use glmia_metrics::{pareto_front, TradeoffPoint};
///
/// let pts = vec![
///     TradeoffPoint { round: 1, utility: 0.5, vulnerability: 0.6 },
///     TradeoffPoint { round: 2, utility: 0.7, vulnerability: 0.8 },
///     TradeoffPoint { round: 3, utility: 0.6, vulnerability: 0.9 }, // dominated
/// ];
/// let front = pareto_front(&pts);
/// assert_eq!(front.len(), 2);
/// ```
#[must_use]
pub fn pareto_front(points: &[TradeoffPoint]) -> Vec<TradeoffPoint> {
    let mut sorted: Vec<TradeoffPoint> = points.to_vec();
    // Sort by utility descending, vulnerability ascending as tiebreak.
    sorted.sort_by(|a, b| {
        b.utility
            .total_cmp(&a.utility)
            .then(a.vulnerability.total_cmp(&b.vulnerability))
    });
    let mut front = Vec::new();
    let mut best_vuln = f64::INFINITY;
    for p in sorted {
        if p.vulnerability < best_vuln {
            best_vuln = p.vulnerability;
            front.push(p);
        }
    }
    front.reverse();
    front
}

/// The point with maximum utility (ties broken by lower vulnerability) —
/// the "maximum average test accuracy with its according vulnerability"
/// statistic the paper reports in Figure 4 and the RQ summaries.
///
/// Returns `None` for an empty curve.
#[must_use]
pub fn best_utility_point(points: &[TradeoffPoint]) -> Option<TradeoffPoint> {
    points.iter().copied().max_by(|a, b| {
        a.utility
            .total_cmp(&b.utility)
            .then(b.vulnerability.total_cmp(&a.vulnerability))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(round: usize, utility: f64, vulnerability: f64) -> TradeoffPoint {
        TradeoffPoint {
            round,
            utility,
            vulnerability,
        }
    }

    #[test]
    fn pareto_front_removes_dominated() {
        let pts = vec![
            p(1, 0.3, 0.55),
            p(2, 0.5, 0.60),
            p(3, 0.4, 0.70), // dominated by round 2
            p(4, 0.7, 0.80),
            p(5, 0.6, 0.90), // dominated by round 4
        ];
        let front = pareto_front(&pts);
        let rounds: Vec<usize> = front.iter().map(|x| x.round).collect();
        assert_eq!(rounds, vec![1, 2, 4]);
    }

    #[test]
    fn pareto_front_sorted_by_utility() {
        let pts = vec![p(1, 0.9, 0.9), p(2, 0.1, 0.5), p(3, 0.5, 0.7)];
        let front = pareto_front(&pts);
        for w in front.windows(2) {
            assert!(w[0].utility <= w[1].utility);
        }
    }

    #[test]
    fn pareto_of_empty_is_empty() {
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn pareto_of_single_is_itself() {
        let only = p(1, 0.5, 0.5);
        assert_eq!(pareto_front(&[only]), vec![only]);
    }

    #[test]
    fn identical_points_collapse_to_one() {
        let pts = vec![p(1, 0.5, 0.5), p(2, 0.5, 0.5)];
        assert_eq!(pareto_front(&pts).len(), 1);
    }

    #[test]
    fn best_utility_breaks_ties_by_vulnerability() {
        let pts = vec![p(1, 0.7, 0.9), p(2, 0.7, 0.6), p(3, 0.2, 0.1)];
        let best = best_utility_point(&pts).unwrap();
        assert_eq!(best.round, 2);
    }

    #[test]
    fn best_utility_of_empty_is_none() {
        assert!(best_utility_point(&[]).is_none());
    }
}

//! Accuracy and generalization error.

use glmia_data::{Dataset, NodeData};
use glmia_nn::Mlp;

/// Top-1 accuracy of `model` on `data` (Eq. 5). Returns 0 for an empty
/// dataset.
///
/// # Panics
///
/// Panics if the dataset's feature width does not match the model input.
#[must_use]
pub fn accuracy(model: &Mlp, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    f64::from(model.accuracy(data.features(), data.labels()))
}

/// Generalization error of a node's model (Eq. 7): local train accuracy
/// minus local test accuracy. Positive values indicate overfitting to the
/// local shard; the paper links the *peak* of this gap to persistent MIA
/// vulnerability (RQ5).
///
/// # Panics
///
/// Panics if feature widths do not match the model input.
#[must_use]
pub fn generalization_error(model: &Mlp, node: &NodeData) -> f64 {
    accuracy(model, &node.train) - accuracy(model, &node.test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_data::Federation;
    use glmia_data::{FeatureKind, Partition, SyntheticSpec};
    use glmia_nn::{Activation, MlpSpec, Sgd};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn accuracy_on_empty_dataset_is_zero() {
        let model = Mlp::new(
            &MlpSpec::new(4, &[], 2, Activation::Identity).unwrap(),
            &mut rng(0),
        );
        let empty = Dataset::empty(4, 2).unwrap();
        assert_eq!(accuracy(&model, &empty), 0.0);
    }

    #[test]
    fn accuracy_is_fraction_correct() {
        use glmia_nn::Matrix;
        // Build a model that predicts class 0 for everything by loading
        // biased parameters into a linear model.
        let spec = MlpSpec::linear(2, 2).unwrap();
        let mut model = Mlp::new(&spec, &mut rng(1));
        // weights 2x2 zero, bias [10, 0] → always class 0.
        model.load_flat(&[0.0, 0.0, 0.0, 0.0, 10.0, 0.0]).unwrap();
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        let d = Dataset::new(x, vec![0, 0, 1], 2).unwrap();
        let acc = accuracy(&model, &d);
        // accuracy is computed in f32; compare at f32 precision.
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn overfit_model_has_positive_gen_error() {
        let spec = SyntheticSpec::new(4, 8, FeatureKind::Gaussian)
            .unwrap()
            .with_class_separation(0.3);
        let fed = Federation::build(&spec, 2, 16, 16, Partition::Iid, &mut rng(2)).unwrap();
        let node = fed.node(0);
        let mspec = MlpSpec::new(8, &[32], 4, Activation::Relu).unwrap();
        let mut model = Mlp::new(&mspec, &mut rng(3));
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        let mut r = rng(4);
        for _ in 0..200 {
            model.train_epoch(
                node.train.features(),
                node.train.labels(),
                8,
                &mut opt,
                &mut r,
            );
        }
        let ge = generalization_error(&model, node);
        assert!(ge > 0.2, "expected clear overfitting, got {ge}");
    }

    #[test]
    fn untrained_model_gen_error_is_small() {
        let spec = SyntheticSpec::new(4, 8, FeatureKind::Gaussian).unwrap();
        let fed = Federation::build(&spec, 2, 100, 100, Partition::Iid, &mut rng(5)).unwrap();
        let mspec = MlpSpec::new(8, &[16], 4, Activation::Relu).unwrap();
        let model = Mlp::new(&mspec, &mut rng(6));
        let ge = generalization_error(&model, fed.node(0));
        assert!(ge.abs() < 0.2, "untrained gen error was {ge}");
    }
}

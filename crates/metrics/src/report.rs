//! Plain-text and CSV table rendering for the benchmark harness.

/// Renders an aligned plain-text table. Every row must have exactly as many
/// cells as `headers`.
///
/// # Panics
///
/// Panics if any row's width differs from the header width.
///
/// # Examples
///
/// ```
/// let table = glmia_metrics::render_table(
///     &["dataset", "acc"],
///     &[vec!["cifar10-like".into(), "0.71".into()]],
/// );
/// assert!(table.contains("cifar10-like"));
/// assert!(table.lines().count() >= 3);
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row.len(),
            headers.len(),
            "row {i} has {} cells, expected {}",
            row.len(),
            headers.len()
        );
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (cell, width) in cells.iter().zip(widths) {
            line.push_str(&format!("{cell:<width$}  "));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let rule: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders a CSV table with a header row. Cells containing commas, quotes
/// or newlines are quoted.
///
/// # Panics
///
/// Panics if any row's width differs from the header width.
///
/// # Examples
///
/// ```
/// let csv = glmia_metrics::render_csv(
///     &["a", "b"],
///     &[vec!["1".into(), "x,y".into()]],
/// );
/// assert_eq!(csv, "a,b\n1,\"x,y\"\n");
/// ```
#[must_use]
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(
            row.len(),
            headers.len(),
            "row {i} has {} cells, expected {}",
            row.len(),
            headers.len()
        );
    }
    let escape = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // Both value columns start at the same offset.
        let idx1 = lines[2].find('1').unwrap();
        let idx2 = lines[3].find("22").unwrap();
        assert_eq!(idx1, idx2);
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn table_rejects_ragged_rows() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn table_with_no_rows_has_header_and_rule() {
        let t = render_table(&["a"], &[]);
        assert_eq!(t.lines().count(), 2);
    }

    #[test]
    fn csv_escapes_special_cells() {
        let csv = render_csv(
            &["a"],
            &[vec!["he said \"hi\"".into()], vec!["x\ny".into()]],
        );
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
        assert!(csv.contains("\"x\ny\""));
    }

    #[test]
    fn csv_plain_cells_unquoted() {
        let csv = render_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "expected 1")]
    fn csv_rejects_ragged_rows() {
        let _ = render_csv(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}

//! Sweep aggregate renderers: per-cell checkpoint records → one columnar
//! `sweep.json` and one human `report.md`.
//!
//! Both renderers are pure functions of the sorted record list. Records
//! are re-sorted by cell index here regardless of input order, and
//! `serde_json`'s map is a `BTreeMap` (keys serialize sorted), so output
//! bytes depend only on the cells' *contents* — never on worker count,
//! completion order, or a kill/resume split.

use std::collections::BTreeMap;

use glmia_trace::{CellRecord, SweepHeaderRecord};
use serde_json::{json, Value};

/// Renders the columnar aggregate: one JSON object whose `columns` map
/// holds a same-length array per column — grid coordinates (`cell`,
/// `seed`, `config_hash`, one column per axis) and every summary metric.
#[must_use]
pub fn render_sweep_json(
    header: &SweepHeaderRecord,
    axis_names: &[String],
    cells: &[CellRecord],
) -> String {
    let cells = sorted(cells);
    let column = |f: &dyn Fn(&CellRecord) -> Value| Value::Array(cells.iter().map(f).collect());
    let mut columns: BTreeMap<String, Value> = BTreeMap::new();
    columns.insert("cell".to_string(), column(&|c| json!(c.cell)));
    columns.insert("seed".to_string(), column(&|c| json!(c.seed)));
    columns.insert("config_hash".to_string(), column(&|c| json!(c.config_hash)));
    for axis in axis_names {
        columns.insert(
            axis.clone(),
            column(&|c| json!(c.axes.get(axis).cloned().unwrap_or_default())),
        );
    }
    let metric =
        |f: fn(&CellRecord) -> Value| -> Value { Value::Array(cells.iter().map(f).collect()) };
    columns.insert(
        "final_test_accuracy".into(),
        metric(|c| json!(c.summary.final_test_accuracy)),
    );
    columns.insert(
        "final_train_accuracy".into(),
        metric(|c| json!(c.summary.final_train_accuracy)),
    );
    columns.insert(
        "final_gen_error".into(),
        metric(|c| json!(c.summary.final_gen_error)),
    );
    columns.insert(
        "final_mia_vulnerability".into(),
        metric(|c| json!(c.summary.final_mia_vulnerability)),
    );
    columns.insert(
        "final_mia_auc".into(),
        metric(|c| json!(c.summary.final_mia_auc)),
    );
    columns.insert("best_round".into(), metric(|c| json!(c.summary.best_round)));
    columns.insert(
        "best_test_accuracy".into(),
        metric(|c| json!(c.summary.best_test_accuracy)),
    );
    columns.insert(
        "mia_vulnerability_at_best".into(),
        metric(|c| json!(c.summary.mia_vulnerability_at_best)),
    );
    columns.insert(
        "lambda2_analytic".into(),
        metric(|c| json!(c.summary.lambda2_analytic)),
    );
    columns.insert(
        "lambda2_cumulative".into(),
        metric(|c| json!(c.summary.lambda2_cumulative)),
    );
    columns.insert(
        "messages_sent".into(),
        metric(|c| json!(c.summary.messages_sent)),
    );
    columns.insert(
        "messages_dropped".into(),
        metric(|c| json!(c.summary.messages_dropped)),
    );
    columns.insert("crashes".into(), metric(|c| json!(c.summary.crashes)));
    columns.insert(
        "observed_nodes".into(),
        metric(|c| json!(c.summary.observed_nodes)),
    );
    columns.insert("attacker".into(), metric(|c| json!(c.summary.attacker)));
    columns.insert("defense".into(), metric(|c| json!(c.summary.defense)));
    columns.insert(
        "local_updates".into(),
        metric(|c| json!(c.summary.local_updates)),
    );
    columns.insert("evals".into(), metric(|c| json!(c.summary.evals)));

    let doc = json!({
        "schema": header.schema,
        "scenario": header.scenario,
        "scenario_hash": header.scenario_hash,
        "cells": header.cells,
        "axes": axis_names,
        "columns": columns,
    });
    let mut out = serde_json::to_string_pretty(&doc)
        .expect("sweep aggregate serializes: no non-string keys or NaN floats");
    out.push('\n');
    out
}

/// Renders the markdown report: the per-cell table plus extreme cells and
/// column aggregates.
#[must_use]
pub fn render_sweep_report(
    header: &SweepHeaderRecord,
    axis_names: &[String],
    cells: &[CellRecord],
) -> String {
    let cells = sorted(cells);
    let mut out = String::new();
    out.push_str(&format!("# Sweep report — {}\n\n", header.scenario));
    out.push_str(&format!("- scenario hash: `{}`\n", header.scenario_hash));
    out.push_str(&format!("- cells: {}\n", cells.len()));
    out.push_str(&format!("- axes: {}\n\n", render_axes(axis_names, &cells)));

    out.push_str("## Cells\n\n|cell|");
    for axis in axis_names {
        out.push_str(&format!("{axis}|"));
    }
    out.push_str("seed|test acc|MIA vuln|MIA AUC|gen err|lambda2|sent|dropped|\n");
    out.push_str("|---:|");
    for _ in axis_names {
        out.push_str(":--|");
    }
    out.push_str("---:|---:|---:|---:|---:|---:|---:|---:|\n");
    for cell in &cells {
        out.push_str(&format!("|{}|", cell.cell));
        for axis in axis_names {
            out.push_str(&format!(
                "{}|",
                cell.axes.get(axis).cloned().unwrap_or_default()
            ));
        }
        let s = &cell.summary;
        out.push_str(&format!(
            "{}|{:.3}|{:.3}|{:.3}|{:.3}|{:.4}|{}|{}|\n",
            cell.seed,
            s.final_test_accuracy,
            s.final_mia_vulnerability,
            s.final_mia_auc,
            s.final_gen_error,
            s.lambda2_analytic,
            s.messages_sent,
            s.messages_dropped,
        ));
    }

    if !cells.is_empty() {
        out.push_str("\n## Extremes\n\n");
        let by = |pick: fn(&CellRecord) -> f64, best_high: bool| -> &CellRecord {
            let mut best = &cells[0];
            for cell in &cells[1..] {
                let better = if best_high {
                    pick(cell) > pick(best)
                } else {
                    pick(cell) < pick(best)
                };
                if better {
                    best = cell;
                }
            }
            best
        };
        let acc = by(|c| c.summary.final_test_accuracy, true);
        out.push_str(&format!(
            "- highest test accuracy: cell {} ({}) at {:.3}\n",
            acc.cell,
            coordinates(acc, axis_names),
            acc.summary.final_test_accuracy,
        ));
        let leak = by(|c| c.summary.final_mia_auc, true);
        out.push_str(&format!(
            "- highest MIA AUC: cell {} ({}) at {:.3}\n",
            leak.cell,
            coordinates(leak, axis_names),
            leak.summary.final_mia_auc,
        ));
        let tight = by(|c| c.summary.final_mia_auc, false);
        out.push_str(&format!(
            "- lowest MIA AUC: cell {} ({}) at {:.3}\n",
            tight.cell,
            coordinates(tight, axis_names),
            tight.summary.final_mia_auc,
        ));

        out.push_str("\n## Aggregates\n\n|column|mean|min|max|\n|:--|---:|---:|---:|\n");
        for (name, pick) in [
            (
                "final_test_accuracy",
                (|c: &CellRecord| c.summary.final_test_accuracy) as fn(&CellRecord) -> f64,
            ),
            ("final_mia_vulnerability", |c| {
                c.summary.final_mia_vulnerability
            }),
            ("final_mia_auc", |c| c.summary.final_mia_auc),
            ("final_gen_error", |c| c.summary.final_gen_error),
        ] {
            // Cell-index iteration order — the float sum is order-pinned.
            let values: Vec<f64> = cells.iter().map(pick).collect();
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            out.push_str(&format!("|{name}|{mean:.3}|{min:.3}|{max:.3}|\n"));
        }
    }
    out
}

/// Records sorted by cell index (cloned; inputs may arrive in completion
/// order).
fn sorted(cells: &[CellRecord]) -> Vec<CellRecord> {
    let mut cells = cells.to_vec();
    cells.sort_by_key(|c| c.cell);
    cells
}

/// `attacker(3) × defense(4) × topology(2)` — the axes line.
fn render_axes(axis_names: &[String], cells: &[CellRecord]) -> String {
    if axis_names.is_empty() {
        return "none".to_string();
    }
    let parts: Vec<String> = axis_names
        .iter()
        .map(|axis| {
            let mut values: Vec<&str> = cells
                .iter()
                .filter_map(|c| c.axes.get(axis).map(String::as_str))
                .collect();
            values.sort_unstable();
            values.dedup();
            format!("{axis}({})", values.len())
        })
        .collect();
    parts.join(" × ")
}

/// `attacker=omniscient, topology=static, seed=31`.
fn coordinates(cell: &CellRecord, axis_names: &[String]) -> String {
    let mut parts: Vec<String> = axis_names
        .iter()
        .filter_map(|axis| cell.axes.get(axis).map(|value| format!("{axis}={value}")))
        .collect();
    parts.push(format!("seed={}", cell.seed));
    parts.join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_trace::{CellSummary, SWEEP_SCHEMA_VERSION};

    fn record(cell: usize, acc: f64) -> CellRecord {
        let mut axes = BTreeMap::new();
        axes.insert("protocol".to_string(), format!("p{cell}"));
        CellRecord {
            cell,
            config_hash: format!("{cell:016x}"),
            seed: 1,
            axes,
            summary: CellSummary {
                final_test_accuracy: acc,
                final_train_accuracy: acc + 0.1,
                final_gen_error: 0.1,
                final_mia_vulnerability: 0.6,
                final_mia_auc: 0.6 + acc / 10.0,
                best_round: 2,
                best_test_accuracy: acc,
                mia_vulnerability_at_best: 0.55,
                lambda2_analytic: 0.5,
                lambda2_cumulative: None,
                messages_sent: 10,
                messages_dropped: 0,
                crashes: 0,
                observed_nodes: 4,
                attacker: "omniscient".to_string(),
                defense: "none".to_string(),
                local_updates: 8,
                evals: 2,
            },
        }
    }

    fn header() -> SweepHeaderRecord {
        SweepHeaderRecord {
            schema: SWEEP_SCHEMA_VERSION,
            scenario: "demo".to_string(),
            scenario_hash: "0".repeat(16),
            cells: 2,
        }
    }

    #[test]
    fn json_is_columnar_and_input_order_independent() {
        let axes = vec!["protocol".to_string()];
        let a = render_sweep_json(&header(), &axes, &[record(0, 0.5), record(1, 0.7)]);
        let b = render_sweep_json(&header(), &axes, &[record(1, 0.7), record(0, 0.5)]);
        assert_eq!(a, b, "completion order must not leak into bytes");
        let doc: serde_json::Value = serde_json::from_str(&a).unwrap();
        assert_eq!(doc["columns"]["cell"], serde_json::json!([0, 1]));
        assert_eq!(doc["columns"]["protocol"], serde_json::json!(["p0", "p1"]));
        assert_eq!(
            doc["columns"]["final_test_accuracy"],
            serde_json::json!([0.5, 0.7])
        );
        assert_eq!(doc["schema"], serde_json::json!(SWEEP_SCHEMA_VERSION));
    }

    #[test]
    fn report_names_extremes_and_aggregates() {
        let axes = vec!["protocol".to_string()];
        let md = render_sweep_report(&header(), &axes, &[record(1, 0.7), record(0, 0.5)]);
        assert!(md.contains("# Sweep report — demo"));
        assert!(md.contains("- highest test accuracy: cell 1"));
        assert!(md.contains("|final_test_accuracy|0.600|0.500|0.700|"));
        let rows: Vec<&str> = md.lines().filter(|l| l.starts_with("|0|")).collect();
        assert_eq!(rows.len(), 1);
    }
}

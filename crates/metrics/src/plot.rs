//! Terminal scatter plots for privacy/utility tradeoff curves.

use crate::TradeoffPoint;

/// Renders one or more labelled tradeoff curves as an ASCII scatter plot
/// (utility on x, vulnerability on y). Each series is drawn with its own
/// glyph; a legend and axis ranges are appended.
///
/// Returns a plain string suitable for `println!`; series beyond six reuse
/// glyphs. Empty input produces an explanatory one-liner.
///
/// # Examples
///
/// ```
/// use glmia_metrics::{plot_tradeoff, TradeoffPoint};
///
/// let series = vec![(
///     "samo".to_string(),
///     vec![TradeoffPoint { round: 1, utility: 0.5, vulnerability: 0.6 }],
/// )];
/// let plot = plot_tradeoff(&series, 40, 10);
/// assert!(plot.contains("samo"));
/// ```
#[must_use]
pub fn plot_tradeoff(
    series: &[(String, Vec<TradeoffPoint>)],
    width: usize,
    height: usize,
) -> String {
    const GLYPHS: [char; 6] = ['o', 'x', '+', '*', '#', '@'];
    let width = width.max(10);
    let height = height.max(5);
    let points: Vec<&TradeoffPoint> = series.iter().flat_map(|(_, p)| p).collect();
    if points.is_empty() {
        return "(no tradeoff points to plot)".to_string();
    }
    let min_max = |f: fn(&TradeoffPoint) -> f64| -> (f64, f64) {
        let lo = points.iter().map(|p| f(p)).fold(f64::INFINITY, f64::min);
        let hi = points
            .iter()
            .map(|p| f(p))
            .fold(f64::NEG_INFINITY, f64::max);
        if (hi - lo).abs() < 1e-12 {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        }
    };
    let (x_lo, x_hi) = min_max(|p| p.utility);
    let (y_lo, y_hi) = min_max(|p| p.vulnerability);

    let mut grid = vec![vec![' '; width]; height];
    for (s, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[s % GLYPHS.len()];
        for p in pts {
            let gx = ((p.utility - x_lo) / (x_hi - x_lo) * (width - 1) as f64).round() as usize;
            let gy =
                ((p.vulnerability - y_lo) / (y_hi - y_lo) * (height - 1) as f64).round() as usize;
            // y axis points up: row 0 is the top (max vulnerability).
            grid[height - 1 - gy][gx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("vulnerability {y_hi:.3}\n"));
    for row in &grid {
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "vulnerability {y_lo:.3}; utility {x_lo:.3} → {x_hi:.3}\n"
    ));
    for (s, (label, _)) in series.iter().enumerate() {
        out.push_str(&format!("  {} {label}\n", GLYPHS[s % GLYPHS.len()]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(round: usize, u: f64, v: f64) -> TradeoffPoint {
        TradeoffPoint {
            round,
            utility: u,
            vulnerability: v,
        }
    }

    #[test]
    fn empty_series_explain_themselves() {
        assert!(plot_tradeoff(&[], 40, 10).contains("no tradeoff points"));
        let empty = vec![("a".to_string(), vec![])];
        assert!(plot_tradeoff(&empty, 40, 10).contains("no tradeoff points"));
    }

    #[test]
    fn plot_has_expected_dimensions() {
        let series = vec![("curve".to_string(), vec![p(1, 0.1, 0.5), p(2, 0.9, 0.9)])];
        let plot = plot_tradeoff(&series, 30, 8);
        // 8 grid rows + header + axis + footer + 1 legend line.
        assert_eq!(plot.lines().count(), 8 + 4);
        let grid_line = plot.lines().nth(1).unwrap();
        assert_eq!(grid_line.chars().count(), 31, "| plus width");
    }

    #[test]
    fn extreme_points_land_in_corners() {
        let series = vec![("c".to_string(), vec![p(1, 0.0, 0.0), p(2, 1.0, 1.0)])];
        let plot = plot_tradeoff(&series, 20, 6);
        let lines: Vec<&str> = plot.lines().collect();
        // Max vulnerability + max utility → top row, last column.
        assert_eq!(lines[1].chars().last(), Some('o'));
        // Min vulnerability + min utility → bottom grid row, first column.
        assert_eq!(lines[6].chars().nth(1), Some('o'));
    }

    #[test]
    fn distinct_series_use_distinct_glyphs() {
        let series = vec![
            ("a".to_string(), vec![p(1, 0.2, 0.2)]),
            ("b".to_string(), vec![p(1, 0.8, 0.8)]),
        ];
        let plot = plot_tradeoff(&series, 20, 6);
        assert!(plot.contains('o') && plot.contains('x'));
        assert!(plot.contains("  o a"));
        assert!(plot.contains("  x b"));
    }

    #[test]
    fn degenerate_range_does_not_divide_by_zero() {
        let series = vec![("flat".to_string(), vec![p(1, 0.5, 0.5), p(2, 0.5, 0.5)])];
        let plot = plot_tradeoff(&series, 20, 6);
        assert!(plot.contains('o'));
    }
}

//! Utility and privacy metrics for gossip-learning experiments.
//!
//! Implements the paper's three measurements (§3.2):
//!
//! * **utility** — top-1 accuracy ([`accuracy`], Eq. 5);
//! * **privacy** — MIA vulnerability, produced by the `glmia-mia` crate and
//!   aggregated here;
//! * **generalization error** ([`generalization_error`], Eq. 7) — local
//!   train accuracy minus local test accuracy.
//!
//! It also provides the plotting-side utilities the paper's figures need:
//! privacy/utility [`TradeoffPoint`]s, [`pareto_front`] extraction, and
//! plain-text/CSV table rendering for the benchmark harness.
//!
//! # Examples
//!
//! ```
//! use glmia_metrics::{accuracy, generalization_error};
//! use glmia_data::{DataPreset, Federation, Partition};
//! use glmia_nn::{Activation, Mlp, MlpSpec};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let spec = DataPreset::Cifar10Like.spec().with_num_classes(3).with_input_dim(8);
//! let fed = Federation::build(&spec, 2, 20, 10, Partition::Iid, &mut rng)?;
//! let model = Mlp::new(&MlpSpec::new(8, &[8], 3, Activation::Relu)?, &mut rng);
//! let acc = accuracy(&model, fed.global_test());
//! assert!((0.0..=1.0).contains(&acc));
//! let ge = generalization_error(&model, fed.node(0));
//! assert!((-1.0..=1.0).contains(&ge));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod plot;
mod report;
mod run_report;
mod sweep;
mod tradeoff;

pub use eval::{accuracy, generalization_error};
pub use plot::plot_tradeoff;
pub use report::{render_csv, render_table};
pub use run_report::{render_markdown_report, render_prometheus, render_round_table};
pub use sweep::{render_sweep_json, render_sweep_report};
pub use tradeoff::{best_utility_point, pareto_front, TradeoffPoint};

//! Rendering a derived [`RunSummary`] as a human-readable Markdown run
//! report and as Prometheus text exposition.
//!
//! The Markdown report keys every section to the paper figure it feeds
//! (Figures 2–8), so a reader can go straight from a trace directory to
//! the plot the numbers belong in. The Prometheus renderer follows the
//! [text exposition format](https://prometheus.io/docs/instrumenting/exposition_formats/):
//! counters for run totals, conventional `_bucket`/`_sum`/`_count` series
//! for the fan-in and staleness histograms, and per-round gauges for the
//! evaluation and mixing time series.
//!
//! Both renderers are pure functions of the summary, which is itself a
//! pure function of the event stream — so reports inherit the trace's
//! byte-identity across thread counts and reruns.

use glmia_trace::{HistogramSummary, RunSummary};

use crate::render_table;

/// Renders `summary` as a Markdown run report with sections keyed to the
/// paper's figures (see the module docs).
#[must_use]
pub fn render_markdown_report(summary: &RunSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!("# Run report: {}\n\n", summary.label));
    out.push_str(&format!(
        "- config fingerprint: `{}`\n",
        summary.config_hash
    ));
    out.push_str(&format!("- trace schema: {}\n", summary.schema));
    out.push_str(&format!(
        "- seeds ({}): {}\n",
        summary.seeds.len(),
        summary
            .seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    ));
    if let Some(topology) = &summary.topology {
        out.push_str(&format!(
            "- topology: {} nodes, {}-regular, analytic lambda2 = {:.6}\n",
            topology.nodes, topology.view_size, topology.lambda2_analytic
        ));
    }
    out.push('\n');

    out.push_str("## Run totals\n\n");
    out.push_str(&markdown_table(
        &[
            "rounds",
            "evals",
            "messages sent",
            "messages dropped",
            "local updates",
        ],
        &[vec![
            summary.totals.rounds.to_string(),
            summary.totals.evals.to_string(),
            summary.totals.messages_sent.to_string(),
            summary.totals.messages_dropped.to_string(),
            summary.totals.local_updates.to_string(),
        ]],
    ));

    if let Some(threat) = &summary.threat {
        out.push_str("\n## Threat model (section 6.2)\n\n");
        out.push_str(
            "Which (round, node) snapshots the adversary observed, and any \
             active defense applied to shared models. `observed nodes` is \
             the mean size of the attacker's vantage across seeds; \
             `observations` counts the per-node attack replays it ran.\n\n",
        );
        out.push_str(&markdown_table(
            &[
                "attacker",
                "defense",
                "observed nodes",
                "of nodes",
                "observations",
            ],
            &[vec![
                format!("`{}`", threat.attacker),
                threat
                    .defense
                    .as_ref()
                    .map_or_else(|| "-".to_string(), |d| format!("`{d}`")),
                format!("{:.1}", threat.mean_observed_nodes),
                threat.nodes.to_string(),
                threat.observations.to_string(),
            ]],
        ));
    }

    if let Some(faults) = &summary.faults {
        out.push_str("\n## Fault injection\n\n");
        out.push_str(
            "Node churn and link faults observed during the run. Availability \
             is the fraction of node-ticks spent up in each round's window; \
             offline drops are deliveries lost to a crashed receiver.\n\n",
        );
        out.push_str(&markdown_table(
            &[
                "crashes",
                "recoveries",
                "offline drops",
                "mean availability",
            ],
            &[vec![
                faults.crashes.to_string(),
                faults.recoveries.to_string(),
                faults.offline_drops.to_string(),
                faults
                    .mean_availability
                    .map_or_else(|| "-".to_string(), |a| format!("{a:.4}")),
            ]],
        ));
        let fault_rows: Vec<Vec<String>> = summary
            .rounds
            .iter()
            .filter(|r| r.availability.is_some() || r.fault_drops.is_some())
            .map(|r| {
                vec![
                    r.round.to_string(),
                    r.availability
                        .map_or_else(|| "-".to_string(), |a| format!("{a:.4}")),
                    r.fault_drops
                        .map_or_else(|| "-".to_string(), |d| d.to_string()),
                ]
            })
            .collect();
        if !fault_rows.is_empty() {
            out.push('\n');
            out.push_str(&markdown_table(
                &["round", "availability", "fault drops"],
                &fault_rows,
            ));
        }
    }

    out.push_str("\n## Merge fan-in (protocol mixing behavior, Figures 2-3)\n\n");
    out.push_str(
        "Models folded per merge: 1 for Base Gossip's pairwise merges, the \
         buffer depth for SAMO's merge-once.\n\n",
    );
    out.push_str(&histogram_markdown(&summary.fan_in, "fan-in"));

    out.push_str("\n## Model staleness (ticks from delivery to merge)\n\n");
    out.push_str(
        "Zero for merge-on-deliver protocols; buffered protocols accumulate \
         staleness until the next wake.\n\n",
    );
    out.push_str(&histogram_markdown(&summary.staleness, "staleness"));

    out.push_str("\n## Privacy/utility per round (Figures 2-6)\n\n");
    out.push_str(
        "Mean across seeds and nodes. `test acc` vs `MIA vuln` is the \
         tradeoff of Figures 2-5; `gen error` vs `MIA vuln` is Figure 6; \
         the round series is Figure 7's early-overfitting view.\n\n",
    );
    let eval_rows: Vec<Vec<String>> = summary
        .rounds
        .iter()
        .filter_map(|r| {
            r.eval.map(|eval| {
                vec![
                    r.round.to_string(),
                    format!("{:.4}", eval.test_accuracy),
                    format!("{:.4}", eval.train_accuracy),
                    format!("{:.4}", eval.mia_vulnerability),
                    format!("{:.4}", eval.mia_auc),
                    format!("{:.4}", eval.gen_error),
                ]
            })
        })
        .collect();
    out.push_str(&markdown_table(
        &[
            "round",
            "test acc",
            "train acc",
            "MIA vuln",
            "MIA AUC",
            "gen error",
        ],
        &eval_rows,
    ));

    let mixing_rows: Vec<Vec<String>> = summary
        .rounds
        .iter()
        .filter(|r| r.lambda2_round.is_some() || r.lambda2_cumulative.is_some())
        .map(|r| {
            let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.6}"));
            vec![
                r.round.to_string(),
                fmt(r.lambda2_round),
                fmt(r.lambda2_cumulative),
            ]
        })
        .collect();
    if !mixing_rows.is_empty() {
        out.push_str("\n## Empirical mixing spectrum (Figure 8, section 4)\n\n");
        out.push_str(
            "lambda2 of the reconstructed per-round mixing matrix W_t and of \
             the cumulative product W_t...W_1, measured on the actual \
             asynchronous message schedule. Compare against the analytic \
             static-graph value in the header above.\n\n",
        );
        out.push_str(&markdown_table(
            &["round", "lambda2(W_t)", "lambda2(W_t...W_1)"],
            &mixing_rows,
        ));
    }

    if !summary.nodes.is_empty() {
        out.push_str("\n## Per-node leakage at the final evaluation (Figure 7 spread)\n\n");
        let node_rows: Vec<Vec<String>> = summary
            .nodes
            .iter()
            .filter_map(|n| {
                let last = n.rounds.len().checked_sub(1)?;
                Some(vec![
                    n.node.to_string(),
                    n.rounds[last].to_string(),
                    format!("{:.4}", n.test_accuracy[last]),
                    format!("{:.4}", n.mia_vulnerability[last]),
                    format!("{:.4}", n.mia_auc[last]),
                    format!("{:.4}", n.gen_error[last]),
                ])
            })
            .collect();
        out.push_str(&markdown_table(
            &[
                "node",
                "round",
                "test acc",
                "MIA vuln",
                "MIA AUC",
                "gen error",
            ],
            &node_rows,
        ));
    }

    if let Some(perf) = &summary.perf {
        out.push_str("\n## Performance (runtime telemetry)\n\n");
        out.push_str(
            "Instrument totals from the run's telemetry side-stream. These \
             counters are deterministic: identical runs produce identical \
             totals at any thread count.\n\n",
        );
        let counter_rows: Vec<Vec<String>> = perf
            .counters
            .iter()
            .map(|(name, value)| vec![format!("`{name}`"), value.to_string()])
            .collect();
        out.push_str(&markdown_table(&["instrument", "total"], &counter_rows));
        if let Some(profile) = &perf.profile {
            if !profile.spans.is_empty() {
                out.push_str(
                    "\nPer-phase span tree from `profile.json`. `self` excludes \
                     time spent in child spans; seconds are wall-clock and vary \
                     across machines and thread counts.\n\n",
                );
                let span_rows: Vec<Vec<String>> = profile
                    .spans
                    .iter()
                    .map(|s| {
                        vec![
                            format!("`{}`", s.path),
                            s.count.to_string(),
                            format!("{:.3}", s.total_secs),
                            format!("{:.3}", s.self_secs),
                        ]
                    })
                    .collect();
                out.push_str(&markdown_table(
                    &["span", "count", "total s", "self s"],
                    &span_rows,
                ));
            }
            if profile.alloc_accounting {
                out.push_str(&format!(
                    "\nheap traffic: {} allocations ({} bytes), {} frees\n",
                    profile.alloc.allocs, profile.alloc.bytes, profile.alloc.deallocs
                ));
            }
        }
    }
    out
}

/// Renders one histogram as a Markdown table plus its quantile line.
fn histogram_markdown(hist: &HistogramSummary, what: &str) -> String {
    let rows: Vec<Vec<String>> = hist
        .buckets
        .iter()
        .map(|b| {
            vec![
                b.le.map_or_else(|| "+Inf".to_string(), |le| format!("<= {le}")),
                b.count.to_string(),
            ]
        })
        .collect();
    let mut out = markdown_table(&[what, "count"], &rows);
    out.push_str(&format!(
        "\ntotal {}, sum {}, p50 {}, p90 {}, p99 {}\n",
        hist.total, hist.sum, hist.p50, hist.p90, hist.p99
    ));
    out
}

/// Renders a GitHub-flavored Markdown table.
fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", headers.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        headers.iter().map(|_| " --- |").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Renders `summary` in the Prometheus text exposition format: run totals
/// as counters, histograms as conventional cumulative `_bucket` series
/// with `_sum`/`_count`, and the per-round evaluation/mixing series as
/// gauges labeled by round.
#[must_use]
pub fn render_prometheus(summary: &RunSummary) -> String {
    let mut out = String::new();
    let counter = |out: &mut String, name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    };
    counter(
        &mut out,
        "glmia_rounds_total",
        "Communication rounds simulated across all seeds.",
        summary.totals.rounds,
    );
    counter(
        &mut out,
        "glmia_evals_total",
        "Attack-replay evaluations performed.",
        summary.totals.evals,
    );
    counter(
        &mut out,
        "glmia_messages_sent_total",
        "Models transmitted.",
        summary.totals.messages_sent,
    );
    counter(
        &mut out,
        "glmia_messages_dropped_total",
        "Models lost to failure injection.",
        summary.totals.messages_dropped,
    );
    counter(
        &mut out,
        "glmia_local_updates_total",
        "Local SGD epochs executed.",
        summary.totals.local_updates,
    );
    prometheus_histogram(
        &mut out,
        "glmia_merge_fanin",
        "Models folded per merge operation.",
        &summary.fan_in,
    );
    prometheus_histogram(
        &mut out,
        "glmia_model_staleness_ticks",
        "Ticks between model delivery and merge.",
        &summary.staleness,
    );

    let gauge_header = |out: &mut String, name: &str, help: &str| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
    };
    if summary.rounds.iter().any(|r| r.eval.is_some()) {
        for (name, help, field) in [
            (
                "glmia_test_accuracy",
                "Mean test accuracy per evaluated round.",
                0usize,
            ),
            (
                "glmia_mia_vulnerability",
                "Mean MIA attack accuracy per evaluated round.",
                1,
            ),
            ("glmia_mia_auc", "Mean MIA AUC per evaluated round.", 2),
            (
                "glmia_generalization_error",
                "Mean generalization error per evaluated round.",
                3,
            ),
        ] {
            gauge_header(&mut out, name, help);
            for r in &summary.rounds {
                if let Some(eval) = r.eval {
                    let value = match field {
                        0 => eval.test_accuracy,
                        1 => eval.mia_vulnerability,
                        2 => eval.mia_auc,
                        _ => eval.gen_error,
                    };
                    out.push_str(&format!("{name}{{round=\"{}\"}} {value}\n", r.round));
                }
            }
        }
    }
    if summary.rounds.iter().any(|r| r.lambda2_round.is_some()) {
        gauge_header(
            &mut out,
            "glmia_lambda2_round",
            "Empirical lambda2 of the per-round mixing matrix.",
        );
        for r in &summary.rounds {
            if let Some(l2) = r.lambda2_round {
                out.push_str(&format!(
                    "glmia_lambda2_round{{round=\"{}\"}} {l2}\n",
                    r.round
                ));
            }
        }
        gauge_header(
            &mut out,
            "glmia_lambda2_cumulative",
            "Contraction of the cumulative mixing product up to each round.",
        );
        for r in &summary.rounds {
            if let Some(l2) = r.lambda2_cumulative {
                out.push_str(&format!(
                    "glmia_lambda2_cumulative{{round=\"{}\"}} {l2}\n",
                    r.round
                ));
            }
        }
    }
    if let Some(faults) = &summary.faults {
        counter(
            &mut out,
            "glmia_fault_crashes_total",
            "Node crashes injected by the fault plan.",
            faults.crashes,
        );
        counter(
            &mut out,
            "glmia_fault_recoveries_total",
            "Node recoveries (silent rejoins).",
            faults.recoveries,
        );
        counter(
            &mut out,
            "glmia_fault_offline_drops_total",
            "Deliveries lost to a crashed receiver.",
            faults.offline_drops,
        );
        if summary.rounds.iter().any(|r| r.availability.is_some()) {
            gauge_header(
                &mut out,
                "glmia_node_availability",
                "Fraction of node-ticks spent up in each round's window.",
            );
            for r in &summary.rounds {
                if let Some(a) = r.availability {
                    out.push_str(&format!(
                        "glmia_node_availability{{round=\"{}\"}} {a}\n",
                        r.round
                    ));
                }
            }
        }
    }
    if let Some(threat) = &summary.threat {
        counter(
            &mut out,
            "glmia_threat_observations_total",
            "Per-node attack replays the configured attacker scored.",
            threat.observations,
        );
        gauge_header(
            &mut out,
            "glmia_threat_observed_nodes",
            "Mean number of nodes inside the attacker's vantage.",
        );
        out.push_str(&format!(
            "glmia_threat_observed_nodes{{attacker=\"{}\",defense=\"{}\"}} {}\n",
            threat.attacker,
            threat.defense.as_deref().unwrap_or("none"),
            threat.mean_observed_nodes
        ));
    }
    if let Some(topology) = &summary.topology {
        gauge_header(
            &mut out,
            "glmia_lambda2_analytic",
            "Analytic lambda2 of the initial static mixing matrix.",
        );
        out.push_str(&format!(
            "glmia_lambda2_analytic {}\n",
            topology.lambda2_analytic
        ));
    }
    if let Some(perf) = &summary.perf {
        for (name, value) in &perf.counters {
            counter(
                &mut out,
                &format!("glmia_telemetry_{name}_total"),
                "Runtime telemetry instrument total for the whole run.",
                *value,
            );
        }
        if let Some(profile) = perf.profile.as_ref().filter(|p| !p.spans.is_empty()) {
            gauge_header(
                &mut out,
                "glmia_telemetry_span_seconds",
                "Wall seconds per profiler span (total includes child spans).",
            );
            for s in &profile.spans {
                out.push_str(&format!(
                    "glmia_telemetry_span_seconds{{span=\"{}\",kind=\"total\"}} {}\n",
                    s.path, s.total_secs
                ));
                out.push_str(&format!(
                    "glmia_telemetry_span_seconds{{span=\"{}\",kind=\"self\"}} {}\n",
                    s.path, s.self_secs
                ));
            }
        }
    }
    out
}

/// Writes one histogram in the conventional cumulative `le` encoding.
fn prometheus_histogram(out: &mut String, name: &str, help: &str, hist: &HistogramSummary) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
    let mut cumulative = 0u64;
    for bucket in &hist.buckets {
        cumulative += bucket.count;
        let le = bucket
            .le
            .map_or_else(|| "+Inf".to_string(), |le| le.to_string());
        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
    }
    out.push_str(&format!("{name}_sum {}\n", hist.sum));
    out.push_str(&format!("{name}_count {}\n", hist.total));
}

/// Renders the per-round evaluation series of a [`RunSummary`] as an
/// aligned plain-text table (the `analyze` counterpart of
/// `ExperimentResult::summary_table`).
#[must_use]
pub fn render_round_table(summary: &RunSummary) -> String {
    let rows: Vec<Vec<String>> = summary
        .rounds
        .iter()
        .filter_map(|r| {
            r.eval.map(|eval| {
                vec![
                    r.round.to_string(),
                    format!("{:.4}", eval.test_accuracy),
                    format!("{:.4}", eval.mia_vulnerability),
                    format!("{:.4}", eval.mia_auc),
                    format!("{:.4}", eval.gen_error),
                ]
            })
        })
        .collect();
    render_table(
        &["round", "test acc", "MIA vuln", "MIA AUC", "gen error"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use glmia_trace::{
        EvalRecord, FaultRecord, FaultRecordKind, HeaderRecord, MixingRecord, NodeEvalRecord,
        RoundCounters, RoundRecord, TopologyRecord, TraceEvent, SCHEMA_VERSION,
    };

    fn sample_summary() -> RunSummary {
        let header = HeaderRecord {
            schema: SCHEMA_VERSION,
            label: "report-test".into(),
            config_hash: "00000000000000ab".into(),
        };
        let round = |round: usize| {
            let mut counters = RoundCounters {
                round,
                tick: round as u64 * 100,
                sends: 8,
                delivers: 8,
                merges: 4,
                models_merged: 8,
                update_epochs: 8,
                ..RoundCounters::default()
            };
            counters.fanin_hist[1] = 4;
            counters.staleness_hist[0] = 8;
            TraceEvent::Round(RoundRecord {
                seed: 1,
                round: counters.round,
                tick: counters.tick,
                sends: counters.sends,
                drops: counters.drops,
                delivers: counters.delivers,
                merges: counters.merges,
                models_merged: counters.models_merged,
                update_epochs: counters.update_epochs,
                fanin_hist: counters.fanin_hist,
                staleness_hist: counters.staleness_hist,
                staleness_sum: counters.staleness_sum,
            })
        };
        let events = vec![
            TraceEvent::Topology(TopologyRecord {
                seed: 1,
                nodes: 8,
                view_size: 2,
                lambda2_analytic: 0.75,
            }),
            round(1),
            TraceEvent::Mixing(MixingRecord {
                seed: 1,
                round: 1,
                lambda2_round: 0.9,
                lambda2_cumulative: 0.9,
            }),
            round(2),
            TraceEvent::Mixing(MixingRecord {
                seed: 1,
                round: 2,
                lambda2_round: 0.8,
                lambda2_cumulative: 0.72,
            }),
            TraceEvent::NodeEval(NodeEvalRecord {
                seed: 1,
                round: 2,
                node: 0,
                test_accuracy: 0.5,
                train_accuracy: 0.7,
                mia_vulnerability: 0.6,
                mia_auc: 0.65,
                gen_error: 0.2,
            }),
            TraceEvent::Eval(EvalRecord {
                seed: 1,
                round: 2,
                test_accuracy: 0.5,
                train_accuracy: 0.7,
                mia_vulnerability: 0.6,
                mia_auc: 0.65,
                gen_error: 0.2,
            }),
        ];
        RunSummary::from_events(&header, &events)
    }

    fn faulty_summary() -> RunSummary {
        let header = HeaderRecord {
            schema: glmia_trace::FAULT_SCHEMA_VERSION,
            label: "fault-report-test".into(),
            config_hash: "00000000000000ab".into(),
        };
        let fault = |round: usize, tick: u64, kind: FaultRecordKind, peer: Option<usize>| {
            TraceEvent::Fault(FaultRecord {
                seed: 1,
                round,
                tick,
                node: 3,
                kind,
                peer,
            })
        };
        let round = |round: usize| {
            TraceEvent::Round(RoundRecord {
                seed: 1,
                round,
                tick: round as u64 * 100,
                sends: 8,
                drops: if round == 2 { 1 } else { 0 },
                delivers: 8,
                merges: 4,
                models_merged: 8,
                update_epochs: 8,
                fanin_hist: RoundCounters::default().fanin_hist,
                staleness_hist: RoundCounters::default().staleness_hist,
                staleness_sum: 0,
            })
        };
        let events = vec![
            TraceEvent::Topology(TopologyRecord {
                seed: 1,
                nodes: 8,
                view_size: 2,
                lambda2_analytic: 0.75,
            }),
            round(1),
            fault(1, 50, FaultRecordKind::Crash, None),
            round(2),
            fault(2, 150, FaultRecordKind::Recover, None),
            fault(2, 160, FaultRecordKind::Drop, Some(1)),
        ];
        RunSummary::from_events(&header, &events)
    }

    fn threat_summary() -> RunSummary {
        let header = HeaderRecord {
            schema: glmia_trace::THREAT_SCHEMA_VERSION,
            label: "threat-report-test".into(),
            config_hash: "00000000000000ab".into(),
        };
        let events = vec![
            TraceEvent::Topology(TopologyRecord {
                seed: 1,
                nodes: 8,
                view_size: 2,
                lambda2_analytic: 0.75,
            }),
            TraceEvent::Threat(glmia_trace::ThreatRecord {
                seed: 1,
                attacker: "neighbors:0,3".into(),
                defense: Some("gaussian:0.1".into()),
                observed_nodes: 4,
                nodes: 8,
                observations: 20,
            }),
        ];
        RunSummary::from_events(&header, &events)
    }

    #[test]
    fn threat_section_reports_attacker_defense_and_observations() {
        let md = render_markdown_report(&threat_summary());
        for needle in [
            "## Threat model (section 6.2)",
            "| attacker | defense | observed nodes | of nodes | observations |",
            "| `neighbors:0,3` | `gaussian:0.1` | 4.0 | 8 | 20 |",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
        let prom = render_prometheus(&threat_summary());
        for needle in [
            "# TYPE glmia_threat_observations_total counter\nglmia_threat_observations_total 20\n",
            "glmia_threat_observed_nodes{attacker=\"neighbors:0,3\",defense=\"gaussian:0.1\"} 4\n",
        ] {
            assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
        }
    }

    #[test]
    fn threat_free_reports_render_no_threat_section() {
        let md = render_markdown_report(&sample_summary());
        assert!(!md.contains("Threat model"), "{md}");
        let prom = render_prometheus(&sample_summary());
        assert!(!prom.contains("glmia_threat_"), "{prom}");
    }

    #[test]
    fn markdown_report_covers_every_section() {
        let md = render_markdown_report(&sample_summary());
        assert!(md.starts_with("# Run report: report-test\n"));
        for needle in [
            "## Run totals",
            "## Merge fan-in",
            "## Model staleness",
            "## Privacy/utility per round (Figures 2-6)",
            "## Empirical mixing spectrum (Figure 8",
            "## Per-node leakage at the final evaluation (Figure 7",
            "analytic lambda2 = 0.750000",
            "| 2 | 0.5000 | 0.7000 | 0.6000 | 0.6500 | 0.2000 |",
            "| 1 | 0.900000 | 0.900000 |",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
    }

    #[test]
    fn fault_free_reports_render_no_fault_section() {
        let md = render_markdown_report(&sample_summary());
        assert!(!md.contains("Fault injection"), "{md}");
        assert!(!md.contains("availability"), "{md}");
        let prom = render_prometheus(&sample_summary());
        assert!(!prom.contains("glmia_fault_"), "{prom}");
        assert!(!prom.contains("glmia_node_availability"), "{prom}");
    }

    #[test]
    fn fault_section_reports_churn_and_availability() {
        let md = render_markdown_report(&faulty_summary());
        for needle in [
            "## Fault injection",
            "| crashes | recoveries | offline drops | mean availability |",
            "| 1 | 1 | 1 | 0.9375 |",
            "| round | availability | fault drops |",
            "| 1 | 0.9375 | 0 |",
            "| 2 | 0.9375 | 1 |",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
        let prom = render_prometheus(&faulty_summary());
        for needle in [
            "# TYPE glmia_fault_crashes_total counter\nglmia_fault_crashes_total 1\n",
            "glmia_fault_recoveries_total 1\n",
            "glmia_fault_offline_drops_total 1\n",
            "glmia_node_availability{round=\"1\"} 0.9375\n",
        ] {
            assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
        }
    }

    #[test]
    fn markdown_report_is_deterministic() {
        assert_eq!(
            render_markdown_report(&sample_summary()),
            render_markdown_report(&sample_summary())
        );
    }

    #[test]
    fn prometheus_output_has_counters_histograms_and_gauges() {
        let text = render_prometheus(&sample_summary());
        for needle in [
            "# TYPE glmia_rounds_total counter\nglmia_rounds_total 2\n",
            "# TYPE glmia_merge_fanin histogram\n",
            "glmia_merge_fanin_bucket{le=\"1\"} 0\n",
            "glmia_merge_fanin_bucket{le=\"2\"} 8\n",
            "glmia_merge_fanin_bucket{le=\"+Inf\"} 8\n",
            "glmia_merge_fanin_sum 16\n",
            "glmia_merge_fanin_count 8\n",
            "glmia_model_staleness_ticks_bucket{le=\"0\"} 16\n",
            "glmia_test_accuracy{round=\"2\"} 0.5\n",
            "glmia_lambda2_round{round=\"1\"} 0.9\n",
            "glmia_lambda2_cumulative{round=\"2\"} 0.72\n",
            "glmia_lambda2_analytic 0.75\n",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        // Histogram buckets are cumulative and monotone.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("glmia_merge_fanin_bucket"))
            .map(|l| l.split_whitespace().last().unwrap().parse().unwrap())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn round_table_lists_evaluated_rounds_only() {
        let table = render_round_table(&sample_summary());
        assert_eq!(table.lines().count(), 3, "header + rule + one eval row");
        assert!(table.contains("0.6500"));
    }

    fn perf_summary() -> RunSummary {
        use glmia_trace::{AllocTotals, PerfSummary, Profile, SpanNode};
        let mut summary = sample_summary();
        let mut counters = std::collections::BTreeMap::new();
        counters.insert("gossip_sends".to_string(), 64u64);
        counters.insert("runner_rounds".to_string(), 2u64);
        summary.perf = Some(PerfSummary {
            counters,
            profile: Some(Profile {
                spans: vec![
                    SpanNode {
                        path: "simulate".into(),
                        count: 1,
                        total_secs: 2.5,
                        self_secs: 1.5,
                        allocs: 0,
                        alloc_bytes: 0,
                    },
                    SpanNode {
                        path: "simulate/eval".into(),
                        count: 2,
                        total_secs: 1.0,
                        self_secs: 1.0,
                        allocs: 0,
                        alloc_bytes: 0,
                    },
                ],
                counters: std::collections::BTreeMap::new(),
                histogram_edges: vec![1, 2],
                queue_depth_buckets: vec![0, 0, 0],
                alloc: AllocTotals::default(),
                alloc_accounting: false,
            }),
        });
        summary
    }

    #[test]
    fn perf_section_renders_counters_and_span_tree() {
        let md = render_markdown_report(&perf_summary());
        for needle in [
            "## Performance (runtime telemetry)",
            "| `gossip_sends` | 64 |",
            "| `runner_rounds` | 2 |",
            "| `simulate` | 1 | 2.500 | 1.500 |",
            "| `simulate/eval` | 2 | 1.000 | 1.000 |",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
        let prom = render_prometheus(&perf_summary());
        for needle in [
            "# TYPE glmia_telemetry_gossip_sends_total counter\nglmia_telemetry_gossip_sends_total 64\n",
            "glmia_telemetry_runner_rounds_total 2\n",
            "glmia_telemetry_span_seconds{span=\"simulate\",kind=\"total\"} 2.5\n",
            "glmia_telemetry_span_seconds{span=\"simulate/eval\",kind=\"self\"} 1\n",
        ] {
            assert!(prom.contains(needle), "missing {needle:?} in:\n{prom}");
        }
    }

    #[test]
    fn perf_free_reports_render_no_performance_section() {
        let md = render_markdown_report(&sample_summary());
        assert!(!md.contains("## Performance"), "{md}");
        let prom = render_prometheus(&sample_summary());
        assert!(!prom.contains("glmia_telemetry_"), "{prom}");
    }

    /// Exposition-format conformance guard: every sample line belongs to a
    /// `glmia_`-prefixed family that previously declared `# HELP` and
    /// `# TYPE`, across every optional section at once.
    #[test]
    fn every_prometheus_family_is_prefixed_and_declared() {
        let mut declared: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for summary in [
            sample_summary(),
            faulty_summary(),
            threat_summary(),
            perf_summary(),
        ] {
            for line in render_prometheus(&summary).lines() {
                if let Some(rest) = line.strip_prefix("# HELP ") {
                    let family = rest.split_whitespace().next().unwrap();
                    assert!(family.starts_with("glmia_"), "unprefixed family: {line}");
                    declared.insert(family.to_string());
                    continue;
                }
                if let Some(rest) = line.strip_prefix("# TYPE ") {
                    let family = rest.split_whitespace().next().unwrap();
                    assert!(
                        declared.contains(family),
                        "TYPE without preceding HELP: {line}"
                    );
                    continue;
                }
                let name = line.split(['{', ' ']).next().unwrap().to_string();
                assert!(name.starts_with("glmia_"), "unprefixed metric: {line}");
                let family = name
                    .strip_suffix("_bucket")
                    .or_else(|| name.strip_suffix("_sum"))
                    .or_else(|| name.strip_suffix("_count"))
                    .unwrap_or(&name);
                assert!(
                    declared.contains(family) || declared.contains(&name),
                    "sample without HELP/TYPE declaration: {line}"
                );
            }
        }
    }
}

//! Quickstart: run one small gossip-learning experiment and watch the
//! privacy/utility tradeoff evolve.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use glmia_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small SAMO run on the Fashion-MNIST-like task: 16 nodes on a
    // dynamic 3-regular graph.
    let config = ExperimentConfig::bench_scale(DataPreset::FashionMnistLike)
        .with_nodes(16)
        .with_view_size(3)
        .with_rounds(20)
        .with_eval_every(2)
        .with_protocol(ProtocolKind::Samo)
        .with_topology_mode(TopologyMode::Dynamic)
        .with_seed(7);

    println!("running: {}", config.label());
    let (result, trace) = run_experiment_traced(&config)?;

    println!("\nround  test-acc        train-acc       MIA-vuln        gen-error");
    for r in &result.rounds {
        println!(
            "{:>5}  {}  {}  {}  {:+.3}±{:.3}",
            r.round,
            r.test_accuracy,
            r.train_accuracy,
            r.mia_vulnerability,
            r.gen_error.mean,
            r.gen_error.std,
        );
    }

    let best = result.best_point().expect("non-empty run");
    println!(
        "\nbest round {}: test accuracy {:.3} at MIA vulnerability {:.3}",
        best.round, best.utility, best.vulnerability
    );
    println!(
        "models sent: {} (dropped: {})",
        result.messages_sent, result.messages_dropped
    );

    // The traced runner also hands back where the time went.
    println!("\nphase timings (config {}):", trace.config_hash_hex());
    for (phase, secs) in trace.phases().iter() {
        println!("  {:<9} {secs:.3}s", phase.name());
    }
    Ok(())
}

//! Graph mixing analysis (the paper's §4): how the spectral contraction of
//! the gossip mixing product explains why dynamic, denser graphs leak less.
//!
//! ```bash
//! cargo run --release --example graph_mixing
//! ```

use glmia_core::prelude::*;
use glmia_graph::Topology;
use glmia_spectral::MixingMatrix;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);

    // Single-matrix spectra: denser k-regular graphs have smaller λ₂.
    println!("single-graph spectral gap (150 nodes):");
    for &k in &[2usize, 5, 10, 25] {
        let g = Topology::random_regular(150, k, &mut rng)?;
        let w = MixingMatrix::from_regular(&g)?;
        println!(
            "  k={k:<3} λ₂={:.4}  gap={:.4}",
            w.lambda2(),
            w.spectral_gap()
        );
    }

    // Product contraction over iterations: static vs dynamic (Figure 8).
    println!("\nλ₂(W*) after T iterations (mean over 10 runs):");
    println!("{:>4} {:>12} {:>12}", "k", "static T=10", "dynamic T=10");
    for &k in &[2usize, 5, 10] {
        let mut values = Vec::new();
        for mode in [TopologyMode::Static, TopologyMode::Dynamic] {
            let series = lambda2_series(&Lambda2Config {
                nodes: 150,
                view_size: k,
                iterations: 10,
                runs: 10,
                mode,
                seed: 5,
            })?;
            values.push(*series.mean.last().expect("non-empty series"));
        }
        println!("{k:>4} {:>12.6} {:>12.6}", values[0], values[1]);
    }
    println!("\npaper's §4 expectation: dynamic ≪ static at equal k — random");
    println!("permutation between rounds multiplies *different* contractions,");
    println!("so individual node contributions dissolve into the consensus");
    println!("model faster, which is exactly what blunts the MPE attack.");
    Ok(())
}

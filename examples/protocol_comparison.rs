//! Protocol comparison (the paper's RQ1): Base Gossip vs SAMO on the same
//! data, topology and budget — who gets the better privacy/utility
//! tradeoff?
//!
//! ```bash
//! cargo run --release --example protocol_comparison
//! ```

use glmia_core::prelude::*;
use glmia_metrics::pareto_front;

fn run(protocol: ProtocolKind) -> Result<ExperimentResult, CoreError> {
    let config = ExperimentConfig::bench_scale(DataPreset::Cifar10Like)
        .with_protocol(protocol)
        .with_topology_mode(TopologyMode::Static)
        .with_view_size(5)
        .with_rounds(30)
        .with_eval_every(3)
        .with_seed(11);
    run_experiment(&config)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = run(ProtocolKind::BaseGossip)?;
    let samo = run(ProtocolKind::Samo)?;

    for (name, result) in [("Base Gossip", &base), ("SAMO", &samo)] {
        println!("\n== {name} ==");
        println!("round  test-acc  MIA-vuln");
        for r in &result.rounds {
            println!(
                "{:>5}  {:>8.3}  {:>8.3}",
                r.round, r.test_accuracy.mean, r.mia_vulnerability.mean
            );
        }
        let front = pareto_front(&result.tradeoff_points());
        println!(
            "pareto front (utility, vulnerability): {:?}",
            front
                .iter()
                .map(|p| (
                    format!("{:.3}", p.utility),
                    format!("{:.3}", p.vulnerability)
                ))
                .collect::<Vec<_>>()
        );
        println!(
            "models sent: {} — SAMO pays ~k× the communication of Base Gossip",
            result.messages_sent
        );
    }

    let best_base = base.best_point().expect("non-empty");
    let best_samo = samo.best_point().expect("non-empty");
    println!(
        "\nsummary: Base max-acc {:.3} @ vuln {:.3} | SAMO max-acc {:.3} @ vuln {:.3}",
        best_base.utility, best_base.vulnerability, best_samo.utility, best_samo.vulnerability
    );
    println!(
        "paper's RQ1 expectation: SAMO reaches equal or better accuracy at lower vulnerability."
    );
    Ok(())
}

//! Attack playground: overfit one model on a small shard, then attack it
//! with every membership-score family and inspect the ROC.
//!
//! ```bash
//! cargo run --release --example attack_playground
//! ```

use glmia_core::prelude::*;
use glmia_data::Federation;
use glmia_mia::{MiaEvaluator, ScorePools, TransferAttack};
use glmia_nn::{Mlp, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(21);
    let data_spec = DataPreset::Cifar10Like.spec();
    let fed = Federation::build(&data_spec, 2, 64, 64, Partition::Iid, &mut rng)?;
    let victim_data = fed.node(0);

    // Train a victim to (over)fit its shard — the situation every gossip
    // node is in between merges.
    let config = ExperimentConfig::bench_scale(DataPreset::Cifar10Like);
    let model_spec = config.model_spec()?;
    let mut victim = Mlp::new(&model_spec, &mut rng);
    let mut opt = Sgd::new(0.01).with_momentum(0.9).with_weight_decay(5e-4);
    for epoch in 0..120 {
        let loss = victim.train_epoch(
            victim_data.train.features(),
            victim_data.train.labels(),
            16,
            &mut opt,
            &mut rng,
        );
        if epoch % 30 == 0 {
            println!("epoch {epoch:>3}: train loss {loss:.4}");
        }
    }
    println!(
        "victim: train acc {:.3}, local test acc {:.3}, global test acc {:.3}\n",
        victim.accuracy(victim_data.train.features(), victim_data.train.labels()),
        victim.accuracy(victim_data.test.features(), victim_data.test.labels()),
        victim.accuracy(fed.global_test().features(), fed.global_test().labels()),
    );

    println!(
        "{:<12} {:>9} {:>7} {:>11}",
        "attack", "accuracy", "AUC", "threshold"
    );
    for kind in AttackKind::ALL {
        let result = MiaEvaluator::new(kind).evaluate(
            &victim,
            &victim_data.train,
            &victim_data.test,
            &mut rng,
        )?;
        println!(
            "{:<12} {:>9.3} {:>7.3} {:>11.4}",
            kind.to_string(),
            result.attack_accuracy,
            result.auc,
            result.threshold
        );
    }

    // The realistic attacker: calibrate the threshold on node 1's data and
    // transfer it to the victim (node 0).
    let shadow_data = fed.node(1);
    let mut shadow = Mlp::new(&model_spec, &mut rng);
    let mut shadow_opt = Sgd::new(0.01).with_momentum(0.9).with_weight_decay(5e-4);
    for _ in 0..120 {
        shadow.train_epoch(
            shadow_data.train.features(),
            shadow_data.train.labels(),
            16,
            &mut shadow_opt,
            &mut rng,
        );
    }
    let transfer = TransferAttack::calibrate_on(
        AttackKind::Mpe,
        &shadow,
        &shadow_data.train,
        &shadow_data.test,
    )?;
    let transferred =
        transfer.evaluate(&victim, &victim_data.train, &victim_data.test, &mut rng)?;
    println!(
        "\ntransferred-threshold MPE (calibrated on another node): accuracy {:.3} (oracle bound above)",
        transferred.attack_accuracy
    );

    // Per-class leakage: where does the membership signal live?
    let breakdown = MiaEvaluator::new(AttackKind::Mpe).per_class(
        &victim,
        &victim_data.train,
        &victim_data.test,
    )?;
    println!("\nper-class MPE leakage (AUC):");
    for c in breakdown.iter().take(10) {
        match c.auc {
            Some(auc) => println!(
                "  class {:>2}: AUC {auc:.3} ({} members / {} non-members)",
                c.class, c.n_members, c.n_nonmembers
            ),
            None => println!("  class {:>2}: not measurable (one side empty)", c.class),
        }
    }

    // A coarse ASCII ROC for the MPE attack.
    let members = AttackKind::Mpe.score_dataset(&victim, &victim_data.train)?;
    let nonmembers = AttackKind::Mpe.score_dataset(&victim, &victim_data.test)?;
    let roc = ScorePools::new(&members, &nonmembers).roc_curve()?;
    println!("\nMPE ROC (fpr → tpr):");
    for target in [0.0, 0.1, 0.25, 0.5, 0.75] {
        if let Some((fpr, tpr)) = roc.iter().find(|(f, _)| *f >= target) {
            println!("  fpr {fpr:.2} → tpr {tpr:.2}");
        }
    }
    Ok(())
}

//! Defense tradeoff: what does perturbing shared models buy, and what does
//! it cost? (The §6.2 mitigation direction, quantified.)
//!
//! ```bash
//! cargo run --release --example defense_tradeoff
//! ```

use glmia_core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let defenses: Vec<(&str, Option<Defense>)> = vec![
        ("no defense", None),
        (
            "gaussian σ=0.01",
            Some(Defense::GaussianNoise { std: 0.01 }),
        ),
        (
            "gaussian σ=0.05",
            Some(Defense::GaussianNoise { std: 0.05 }),
        ),
        ("mask 30%", Some(Defense::RandomMask { fraction: 0.3 })),
    ];

    println!(
        "{:<18} {:>9} {:>9} {:>7}",
        "defense", "test-acc", "MIA-vuln", "AUC"
    );
    for (label, defense) in defenses {
        // Attack the *transmitted* models: perturbing shares can only
        // protect what leaves the node, so that is the surface to measure.
        let mut config = ExperimentConfig::bench_scale(DataPreset::Cifar10Like)
            .with_nodes(16)
            .with_rounds(20)
            .with_eval_every(5)
            .with_attack_surface(AttackSurface::SharedModel)
            .with_seed(23);
        if let Some(d) = defense {
            config = config.with_defense(d);
        }
        let result = run_experiment(&config)?;
        let last = result.final_round();
        println!(
            "{label:<18} {:>9.3} {:>9.3} {:>7.3}",
            last.test_accuracy.mean, last.mia_vulnerability.mean, last.mia_auc.mean
        );
    }
    println!("\nstronger perturbation lowers leakage and costs accuracy — the");
    println!("architectural levers the paper studies (mixing, dynamics) shift");
    println!("the same tradeoff without paying noise for it.");
    Ok(())
}

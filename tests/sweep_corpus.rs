//! Malformed-scenario corpus: every file under
//! `tests/fixtures/scenarios/` must fail with a *typed*, line-numbered
//! [`ScenarioError`] — never a panic, never a silently partial parse.
//! The CLI-level contract (scenario problem → `glmia sweep` exit 1) is
//! covered by `crates/cli/tests/cli_e2e.rs`.

use std::path::PathBuf;

use glmia_sweep::{Scenario, ScenarioError};

fn corpus(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/scenarios")
        .join(name)
}

fn parse(name: &str) -> ScenarioError {
    Scenario::from_path(&corpus(name)).unwrap_err()
}

#[test]
fn wrongly_typed_axis_values_name_section_key_and_line() {
    let err = parse("bad_axis_type.toml");
    match &err {
        ScenarioError::BadValue {
            section, key, line, ..
        } => {
            assert_eq!(section, "axes");
            assert_eq!(key, "nodes");
            assert_eq!(*line, 11);
        }
        other => panic!("expected BadValue, got {other:?}"),
    }
    assert!(err.to_string().contains("line 11"), "{err}");
}

#[test]
fn unknown_keys_are_rejected_with_their_line() {
    let err = parse("unknown_key.toml");
    assert_eq!(
        err,
        ScenarioError::UnknownKey {
            section: "scenario".to_string(),
            key: "nodez".to_string(),
            line: 5,
        }
    );
}

#[test]
fn unknown_sections_are_rejected_with_their_line() {
    let err = parse("unknown_section.toml");
    assert_eq!(
        err,
        ScenarioError::UnknownSection {
            name: "faults".to_string(),
            line: 8,
        }
    );
    assert!(err.to_string().contains("expected scenario|"), "{err}");
}

#[test]
fn empty_grids_are_refused_before_anything_runs() {
    let err = parse("empty_grid.toml");
    assert!(
        matches!(err, ScenarioError::EmptyGrid { line: 8, .. }),
        "{err:?}"
    );
}

#[test]
fn conflicting_seed_specs_are_refused() {
    assert_eq!(
        parse("conflicting_seeds.toml"),
        ScenarioError::ConflictingSeeds { line: 8 }
    );
}

#[test]
fn grammar_failures_surface_at_parse_time_with_the_file_line() {
    let err = parse("bad_grammar.toml");
    match &err {
        ScenarioError::BadValue {
            section,
            key,
            line,
            message,
        } => {
            assert_eq!(section, "threat");
            assert_eq!(key, "attacker");
            assert_eq!(*line, 8);
            assert!(message.contains("sideways"), "{message}");
        }
        other => panic!("expected BadValue, got {other:?}"),
    }
}

#[test]
fn toml_syntax_errors_carry_their_line() {
    let err = parse("bad_syntax.toml");
    match &err {
        ScenarioError::Toml(toml) => assert_eq!(toml.line, 4),
        other => panic!("expected Toml, got {other:?}"),
    }
}

#[test]
fn a_missing_name_is_a_typed_missing_error() {
    assert_eq!(
        parse("missing_name.toml"),
        ScenarioError::Missing {
            what: "`[scenario] name`".to_string(),
        }
    );
}

#[test]
fn every_corpus_file_fails_with_a_typed_error() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/scenarios");
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .map(|entry| entry.expect("readable entry").path())
        .collect();
    names.sort();
    assert!(names.len() >= 8, "corpus has at least 8 cases");
    for path in names {
        let err = Scenario::from_path(&path).expect_err("corpus files must not parse");
        assert!(
            !err.to_string().is_empty(),
            "{}: error renders",
            path.display()
        );
    }
}

//! End-to-end observability guarantees: the trace layer sees the same
//! event sequence at any thread count, serializes byte-identically across
//! same-seed reruns, and composes with other observers without changing
//! experiment numbers.

use glmia_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick(seed: u64) -> ExperimentConfig {
    ExperimentConfig::quick_test(DataPreset::Cifar10Like).with_seed(seed)
}

#[test]
fn event_sequence_is_identical_across_thread_counts() {
    let serial = run_experiment_traced(&quick(21).with_parallelism(Parallelism::Fixed(1))).unwrap();
    let auto = run_experiment_traced(&quick(21).with_parallelism(Parallelism::Auto)).unwrap();
    let fixed4 = run_experiment_traced(&quick(21).with_parallelism(Parallelism::Fixed(4))).unwrap();
    assert_eq!(serial.0, auto.0, "results are thread-count invariant");
    assert_eq!(
        serial.1.events(),
        auto.1.events(),
        "the recorded event sequence is thread-count invariant"
    );
    assert_eq!(serial.1.events(), fixed4.1.events());
    assert_eq!(serial.1.totals(), auto.1.totals());
}

#[test]
fn events_jsonl_is_byte_identical_across_reruns() {
    let a = run_experiment_traced(&quick(22)).unwrap().1;
    let b = run_experiment_traced(&quick(22)).unwrap().1;
    assert_eq!(
        a.events_jsonl(),
        b.events_jsonl(),
        "same-seed reruns must emit byte-identical JSONL"
    );
    // ... and across thread counts too: no wall-clock leaks into events.
    let serial = run_experiment_traced(&quick(22).with_parallelism(Parallelism::Fixed(1)))
        .unwrap()
        .1;
    assert_eq!(a.events_jsonl(), serial.events_jsonl());
}

#[test]
fn different_seeds_or_configs_change_the_stream() {
    let a = run_experiment_traced(&quick(23)).unwrap().1;
    let b = run_experiment_traced(&quick(24)).unwrap().1;
    assert_ne!(
        a.events_jsonl(),
        b.events_jsonl(),
        "seed is part of the stream"
    );
    let c = run_experiment_traced(&quick(23).with_rounds(4)).unwrap().1;
    assert_ne!(
        a.config_hash_hex(),
        c.config_hash_hex(),
        "config changes change the fingerprint"
    );
    assert_ne!(
        a.config_hash_hex(),
        b.config_hash_hex(),
        "the seed is part of the config identity"
    );
}

#[test]
fn trace_stream_shape_matches_schedule() {
    let config = quick(25).with_rounds(6).with_eval_every(4);
    let (result, trace) = run_experiment_traced(&config).unwrap();
    // Rounds 4 and 6 are evaluated; every round is counted.
    let evaluated: Vec<usize> = result.rounds.iter().map(|r| r.round).collect();
    assert_eq!(evaluated, vec![4, 6]);
    let kinds: Vec<&'static str> = trace
        .events()
        .iter()
        .map(|e| match e {
            TraceEvent::Header(_) => "header",
            TraceEvent::Topology(_) => "topology",
            TraceEvent::Threat(_) => "threat",
            TraceEvent::Round(_) => "round",
            TraceEvent::Fault(_) => "fault",
            TraceEvent::Mixing(_) => "mixing",
            TraceEvent::NodeEval(_) => "nodeeval",
            TraceEvent::Eval(_) => "eval",
        })
        .collect();
    // Round-major interleaving: topology up front, then per round a Round
    // record, its Mixing record, and (on evaluated rounds 4 and 6) one
    // NodeEval per node followed by the across-node Eval.
    let mut expected: Vec<&'static str> = vec!["topology"];
    for round in 1..=6 {
        expected.push("round");
        expected.push("mixing");
        if round == 4 || round == 6 {
            expected.extend(std::iter::repeat_n("nodeeval", config.nodes()));
            expected.push("eval");
        }
    }
    assert_eq!(kinds, expected, "each round's derived records follow it");
    let jsonl = trace.events_jsonl();
    assert_eq!(
        jsonl.lines().count(),
        kinds.len() + 1,
        "header + one line per event"
    );
    assert!(jsonl.lines().next().unwrap().contains("\"schema\":2"));
}

#[test]
fn multiple_observers_watch_one_simulation() {
    use glmia_gossip::{Observers, RoundSnapshot, SendEvent, SimObserver};

    // An attacker-style accumulator (closure sink) and a metrics recorder
    // (TraceRecorder) plus a custom progress counter all watch one run.
    #[derive(Default)]
    struct Progress {
        rounds_started: usize,
        sends: u64,
    }
    impl SimObserver for Progress {
        fn on_round_start(&mut self, _round: usize, _tick: u64) {
            self.rounds_started += 1;
        }
        fn on_send(&mut self, _event: SendEvent) {
            self.sends += 1;
        }
    }

    let config = quick(26);
    let mut rng = StdRng::seed_from_u64(config.seed());
    let federation = glmia_data::Federation::build(
        &config.data_spec(),
        config.nodes(),
        config.train_per_node(),
        config.test_per_node(),
        config.partition(),
        &mut rng,
    )
    .unwrap();
    let topology =
        glmia_graph::Topology::random_regular(config.nodes(), config.view_size(), &mut rng)
            .unwrap();
    let model_spec = config.model_spec().unwrap();
    let mut sim = glmia_gossip::Simulation::new(
        config.sim_config(),
        &model_spec,
        &federation,
        topology,
        config.seed(),
    )
    .unwrap();

    let mut snapshots = Vec::new();
    let sink = |s: RoundSnapshot| snapshots.push(s.round);
    let chain = Observers::new(
        Progress::default(),
        Observers::new(TraceRecorder::new(), sink),
    );
    let chain = sim.run_observed(chain);
    let (progress, rest) = chain.into_inner();
    let (recorder, _sink) = rest.into_inner();

    assert_eq!(progress.rounds_started, config.rounds());
    assert_eq!(progress.sends, sim.messages_sent());
    assert_eq!(recorder.rounds().len(), config.rounds());
    let recorded_sends: u64 = recorder.rounds().iter().map(|r| r.sends).sum();
    assert_eq!(
        recorded_sends, progress.sends,
        "both observers saw every send"
    );
    assert_eq!(snapshots, (1..=config.rounds()).collect::<Vec<_>>());
}

#[test]
fn legacy_closure_callers_still_compile_and_run() {
    // The pre-trait `run_with(FnMut(RoundSnapshot))` surface, untouched.
    let config = quick(27);
    let mut rng = StdRng::seed_from_u64(config.seed());
    let federation = glmia_data::Federation::build(
        &config.data_spec(),
        config.nodes(),
        config.train_per_node(),
        config.test_per_node(),
        config.partition(),
        &mut rng,
    )
    .unwrap();
    let topology =
        glmia_graph::Topology::random_regular(config.nodes(), config.view_size(), &mut rng)
            .unwrap();
    let model_spec = config.model_spec().unwrap();
    let mut sim = glmia_gossip::Simulation::new(
        config.sim_config(),
        &model_spec,
        &federation,
        topology,
        config.seed(),
    )
    .unwrap();
    let mut rounds = 0usize;
    sim.run_with(|snapshot| {
        assert_eq!(snapshot.models.len(), config.nodes());
        rounds += 1;
    });
    assert_eq!(rounds, config.rounds());
}

//! Cross-crate property-based tests of the workspace's core invariants.

use glmia_data::{partition_dirichlet, partition_iid, FeatureKind, SyntheticSpec};
use glmia_graph::Topology;
use glmia_mia::ScorePools;
use glmia_nn::{softmax_rows, Matrix};
use glmia_spectral::{product_contraction, MixingMatrix, ProductContractionOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Feasible (n, k) pairs for random regular graphs.
fn regular_params() -> impl Strategy<Value = (usize, usize)> {
    (4usize..40, 2usize..6).prop_filter("k < n and n*k even", |&(n, k)| k < n && (n * k) % 2 == 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn peerswap_preserves_regularity_and_symmetry(
        (n, k) in regular_params(),
        seed in 0u64..1000,
        swaps in 1usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = Topology::random_regular(n, k, &mut rng).unwrap();
        for _ in 0..swaps {
            let i = rng.gen_range(0..n);
            g.swap_with_random_neighbor(i, &mut rng);
        }
        prop_assert!(g.is_regular(k));
        prop_assert!(g.invariants_hold());
        prop_assert!(g.is_connected(), "PeerSwap relabels nodes, connectivity is invariant");
    }

    #[test]
    fn mixing_matrices_are_doubly_stochastic_with_unit_top_eigenvalue(
        (n, k) in regular_params(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Topology::random_regular(n, k, &mut rng).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        prop_assert!(w.is_symmetric(1e-12));
        prop_assert!(w.is_doubly_stochastic(1e-9));
        let l2 = w.lambda2();
        prop_assert!(l2 < 1.0 - 1e-9, "connected graph must have λ₂ < 1, got {l2}");
        prop_assert!(l2 >= -1.0 - 1e-9);
        let sigma = product_contraction(
            &[w],
            ProductContractionOptions::default(),
            &mut rng,
        ).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&sigma));
    }

    #[test]
    fn mixing_preserves_the_mean(
        (n, k) in regular_params(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Topology::random_regular(n, k, &mut rng).unwrap();
        let w = MixingMatrix::from_regular(&g).unwrap();
        let v: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
        let mean_before: f64 = v.iter().sum::<f64>() / n as f64;
        let out = w.apply(&v);
        let mean_after: f64 = out.iter().sum::<f64>() / n as f64;
        prop_assert!((mean_before - mean_after).abs() < 1e-9);
        // And the spread shrinks (consensus contraction).
        let spread = |xs: &[f64], m: f64| xs.iter().map(|x| (x - m).powi(2)).sum::<f64>();
        prop_assert!(spread(&out, mean_after) <= spread(&v, mean_before) + 1e-9);
    }

    #[test]
    fn oracle_attack_accuracy_is_bounded_on_balanced_pools(
        scores in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0), 1..80),
    ) {
        let members: Vec<f64> = scores.iter().map(|s| s.0).collect();
        let nonmembers: Vec<f64> = scores.iter().map(|s| s.1).collect();
        let pools = ScorePools::new(&members, &nonmembers);
        let report = pools.optimal_threshold().unwrap();
        prop_assert!((0.5..=1.0).contains(&report.accuracy),
            "balanced oracle accuracy must be in [0.5, 1], got {}", report.accuracy);
        let a = pools.auc().unwrap();
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn softmax_rows_are_distributions(
        rows in 1usize..6,
        cols in 2usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.gen_range(-30.0..30.0)).collect();
        let logits = Matrix::from_vec(rows, cols, data).unwrap();
        let probs = softmax_rows(&logits);
        for r in 0..rows {
            let row = probs.row(r);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn partitions_conserve_samples(
        n_samples in 40usize..200,
        n_nodes in 2usize..10,
        beta in 0.05f64..5.0,
        seed in 0u64..1000,
    ) {
        prop_assume!(n_samples >= 2 * n_nodes);
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = SyntheticSpec::new(5, 4, FeatureKind::Gaussian).unwrap();
        let world = spec.sample_world(&mut rng);
        let data = world.sample(n_samples, &mut rng);
        let iid = partition_iid(&data, n_nodes, &mut rng).unwrap();
        prop_assert_eq!(iid.iter().map(|d| d.len()).sum::<usize>(), n_samples);
        let dir = partition_dirichlet(&data, n_nodes, beta, &mut rng).unwrap();
        prop_assert_eq!(dir.iter().map(|d| d.len()).sum::<usize>(), n_samples);
        for shard in &dir {
            prop_assert!(shard.len() >= 2, "repair pass guarantees ≥ 2 samples");
        }
    }

    #[test]
    fn mpe_scores_are_finite_and_nonnegative(
        probs in proptest::collection::vec(0.0f32..1.0, 2..20),
        label_pick in 0usize..1000,
    ) {
        use glmia_mia::AttackKind;
        // Normalize to a distribution.
        let total: f32 = probs.iter().sum::<f32>().max(1e-6);
        let probs: Vec<f32> = probs.iter().map(|p| p / total).collect();
        let label = label_pick % probs.len();
        let mpe = AttackKind::Mpe.score(&probs, label);
        prop_assert!(mpe.is_finite());
        prop_assert!(mpe >= 0.0);
        let h = AttackKind::Entropy.score(&probs, label);
        prop_assert!(h.is_finite());
        prop_assert!(h >= -1e-9);
        prop_assert!(h <= (probs.len() as f64).ln() + 1e-6);
    }

    #[test]
    fn lr_schedule_factors_are_positive_and_bounded(
        round in 0usize..500,
        total in 1usize..500,
        warmup_rounds in 1usize..50,
        start in 0.01f32..1.0,
        every in 1usize..50,
        decay in 0.05f32..1.0,
        min_factor in 0.0f32..1.0,
    ) {
        use glmia_gossip::LrSchedule;
        let schedules = [
            LrSchedule::Constant,
            LrSchedule::Warmup { rounds: warmup_rounds, start_factor: start },
            LrSchedule::StepDecay { every_rounds: every, factor: decay },
            LrSchedule::Cosine { min_factor },
        ];
        for s in schedules {
            let f = s.factor_at(round, total);
            prop_assert!(f > 0.0, "{s} produced non-positive factor {f}");
            prop_assert!(f <= 1.0 + 1e-6, "{s} produced factor above 1: {f}");
        }
    }

    #[test]
    fn regular_graph_stats_invariants(
        (n, k) in regular_params(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Topology::random_regular(n, k, &mut rng).unwrap();
        let stats = g.stats();
        prop_assert_eq!(stats.edges, n * k / 2);
        prop_assert_eq!(stats.min_degree, k);
        prop_assert_eq!(stats.max_degree, k);
        let diameter = stats.diameter.expect("connected by construction");
        let apl = stats.average_path_length.expect("connected");
        prop_assert!(apl <= diameter as f64 + 1e-9);
        prop_assert!(apl >= 1.0 - 1e-9, "paths are at least one hop");
        prop_assert!((0.0..=1.0).contains(&stats.clustering_coefficient));
    }

    #[test]
    fn transferred_threshold_never_beats_oracle(
        scores in proptest::collection::vec((0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0, 0.0f64..10.0), 2..40),
    ) {
        use glmia_mia::{AttackKind, TransferAttack};
        let aux_m: Vec<f64> = scores.iter().map(|s| s.0).collect();
        let aux_n: Vec<f64> = scores.iter().map(|s| s.1).collect();
        let victim_m: Vec<f64> = scores.iter().map(|s| s.2).collect();
        let victim_n: Vec<f64> = scores.iter().map(|s| s.3).collect();
        let transfer = TransferAttack::calibrate(AttackKind::Mpe, &aux_m, &aux_n).unwrap();
        let transferred = transfer.accuracy(&victim_m, &victim_n);
        let oracle = ScorePools::new(&victim_m, &victim_n)
            .optimal_threshold()
            .unwrap()
            .accuracy;
        prop_assert!(transferred <= oracle + 1e-12,
            "transferred {transferred} beat oracle {oracle}");
    }

    #[test]
    fn model_averaging_is_a_convex_combination(
        seed in 0u64..1000,
    ) {
        use glmia_nn::{Activation, Mlp, MlpSpec};
        let spec = MlpSpec::new(3, &[4], 2, Activation::Relu).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Mlp::new(&spec, &mut rng);
        let b = Mlp::new(&spec, &mut rng);
        let avg: Vec<f32> = a.flat_params().iter().zip(b.flat_params())
            .map(|(x, y)| (x + y) / 2.0)
            .collect();
        for ((&x, y), z) in a.flat_params().iter().zip(b.flat_params()).zip(&avg) {
            let lo = x.min(y) - 1e-6;
            let hi = x.max(y) + 1e-6;
            prop_assert!((lo..=hi).contains(z));
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-injection invariants: the simulator under an arbitrary (valid)
// FaultPlan still conserves messages exactly, keeps crashed nodes silent,
// and treats an inert plan as literally no plan.
// ---------------------------------------------------------------------------

mod fault {
    use super::*;
    use glmia_data::{FeatureKind, Federation, Partition, SyntheticSpec};
    use glmia_gossip::{
        ChurnConfig, FaultEvent, FaultKind, FaultPlan, LatencyDist, MergeEvent, ProtocolKind,
        SendEvent, SimConfig, SimObserver, Simulation, TopologyMode, UpdateEvent,
    };
    use glmia_nn::{Activation, MlpSpec};
    use std::collections::BTreeSet;

    fn setup(n: usize, k: usize, seed: u64) -> (MlpSpec, Federation, Topology) {
        let spec = SyntheticSpec::new(3, 6, FeatureKind::Gaussian)
            .unwrap()
            .with_class_separation(1.5);
        let fed = Federation::build(
            &spec,
            n,
            12,
            6,
            Partition::Iid,
            &mut StdRng::seed_from_u64(seed),
        )
        .unwrap();
        let topo = Topology::random_regular(n, k, &mut StdRng::seed_from_u64(seed + 1)).unwrap();
        let model_spec = MlpSpec::new(6, &[8], 3, Activation::Relu).unwrap();
        (model_spec, fed, topo)
    }

    /// An arbitrary *valid* fault plan: any subset of the three knobs.
    fn fault_plan() -> impl Strategy<Value = FaultPlan> {
        let churn = proptest::option::of((0.05f64..0.7, 20u64..60, 60u64..240))
            .prop_map(|c| c.map(|(rate, lo, hi)| ChurnConfig::new(rate).with_downtime(lo, hi)));
        let latency = proptest::option::of(prop_oneof![
            (1u64..10).prop_map(|ticks| LatencyDist::Fixed { ticks }),
            (1u64..5, 5u64..30).prop_map(|(min, max)| LatencyDist::Uniform { min, max }),
            (1u64..5, 20u64..80, 0.0f64..0.5).prop_map(|(base, tail, tail_prob)| {
                LatencyDist::Straggler {
                    base,
                    tail,
                    tail_prob,
                }
            }),
        ]);
        let drop = proptest::option::of(0.0f64..0.45);
        (churn, latency, drop).prop_map(|(churn, latency, drop)| {
            let mut plan = FaultPlan::none();
            if let Some(c) = churn {
                plan = plan.with_churn(c);
            }
            if let Some(l) = latency {
                plan = plan.with_latency(l);
            }
            if let Some(d) = drop {
                plan = plan.with_link_drop(d);
            }
            plan
        })
    }

    fn sim_params() -> impl Strategy<Value = (usize, usize)> {
        (4usize..9, 2usize..4)
            .prop_filter("k < n and n*k even", |&(n, k)| k < n && (n * k) % 2 == 0)
    }

    /// Flags any activity at a node the fault stream says is down.
    #[derive(Default)]
    struct Silence {
        down: BTreeSet<usize>,
        violations: Vec<String>,
    }
    impl SimObserver for Silence {
        fn on_send(&mut self, event: SendEvent) {
            if self.down.contains(&event.from) {
                self.violations
                    .push(format!("send from down node {}", event.from));
            }
        }
        fn on_merge(&mut self, event: MergeEvent) {
            if self.down.contains(&event.node) {
                self.violations
                    .push(format!("merge at down node {}", event.node));
            }
        }
        fn on_local_update(&mut self, event: UpdateEvent) {
            if self.down.contains(&event.node) {
                self.violations
                    .push(format!("update at down node {}", event.node));
            }
        }
        fn on_fault(&mut self, event: FaultEvent) {
            match event.kind {
                FaultKind::Crash => {
                    self.down.insert(event.node);
                }
                FaultKind::Recover => {
                    self.down.remove(&event.node);
                }
                FaultKind::DeliveryDropped => {
                    if !self.down.contains(&event.node) {
                        self.violations
                            .push(format!("offline drop at up node {}", event.node));
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn faulty_runs_conserve_messages_exactly(
            (n, k) in sim_params(),
            plan in fault_plan(),
            seed in 0u64..500,
        ) {
            let (spec, fed, topo) = setup(n, k, seed);
            let cfg = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
                .with_rounds(4)
                .with_local_epochs(1)
                .with_batch_size(4)
                .with_fault_plan(plan);
            let mut sim = Simulation::new(cfg, &spec, &fed, topo, seed).unwrap();
            let result = sim.run();
            let received: u64 = result.node_stats.iter().map(|s| s.received).sum();
            prop_assert_eq!(
                result.messages_sent,
                received + result.messages_dropped + sim.messages_in_flight(),
                "sent must equal delivered + dropped + in flight"
            );
        }

        #[test]
        fn crashed_nodes_are_silent_while_down(
            (n, k) in sim_params(),
            rate in 0.2f64..0.8,
            seed in 0u64..500,
        ) {
            let (spec, fed, topo) = setup(n, k, seed);
            let cfg = SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
                .with_rounds(5)
                .with_local_epochs(1)
                .with_batch_size(4)
                .with_fault_plan(FaultPlan::none().with_churn(
                    ChurnConfig::new(rate).with_downtime(40, 160),
                ));
            let mut sim = Simulation::new(cfg, &spec, &fed, topo, seed).unwrap();
            let watch = sim.run_observed(Silence::default());
            prop_assert_eq!(watch.violations, Vec::<String>::new());
        }

        #[test]
        fn inert_fault_plans_are_byte_identical_to_no_plan(
            (n, k) in sim_params(),
            seed in 0u64..500,
        ) {
            let base_cfg = || SimConfig::new(ProtocolKind::Samo, TopologyMode::Static)
                .with_rounds(3)
                .with_local_epochs(1)
                .with_batch_size(4);
            let run = |cfg: SimConfig| {
                let (spec, fed, topo) = setup(n, k, seed);
                Simulation::new(cfg, &spec, &fed, topo, seed).unwrap().run()
            };
            let plain = run(base_cfg());
            let inert = run(base_cfg().with_fault_plan(FaultPlan::none()));
            prop_assert_eq!(&plain, &inert);
            // Byte identity, not just structural equality.
            let a = serde_json::to_string(&plain).unwrap();
            let b = serde_json::to_string(&inert).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}

//! Golden-file regression test for the sweep aggregate pipeline.
//!
//! The committed `scenarios/smoke.toml` runs end-to-end through
//! [`run_sweep`] and the resulting `sweep.json` / `report.md` bytes are
//! compared against the golden copies under
//! `tests/fixtures/golden/sweep/`. Any byte drift in grid expansion, cell
//! execution, or the aggregate renderers fails here first, with a
//! regeneration escape hatch (`GLMIA_UPDATE_GOLDEN=1`) for intentional
//! changes.

use std::path::PathBuf;

use glmia_core::Parallelism;
use glmia_sweep::{run_sweep, Scenario};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/golden/sweep")
}

fn smoke_outputs() -> (String, String) {
    let scenario_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/smoke.toml");
    let scenario = Scenario::from_path(&scenario_path).expect("committed smoke scenario parses");
    let dir = std::env::temp_dir().join(format!("glmia-sweep-golden-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let outcome =
        run_sweep(&scenario, &dir, Parallelism::Fixed(2), false).expect("smoke sweep runs");
    assert_eq!((outcome.total, outcome.ran), (4, 4));
    let json = std::fs::read_to_string(outcome.sweep_json).expect("sweep.json written");
    let md = std::fs::read_to_string(outcome.report_md).expect("report.md written");
    std::fs::remove_dir_all(&dir).ok();
    (json, md)
}

#[test]
fn smoke_sweep_matches_the_golden_files_byte_for_byte() {
    let (json, md) = smoke_outputs();

    // Semantic floor independent of the golden bytes.
    let value: serde_json::Value = serde_json::from_str(&json).expect("sweep.json is valid JSON");
    assert_eq!(value["scenario"].as_str(), Some("smoke"));
    assert_eq!(value["cells"].as_u64(), Some(4));
    assert_eq!(value["axes"][0].as_str(), Some("protocol"));
    let col = &value["columns"]["final_mia_auc"];
    assert_eq!(col.as_array().map(Vec::len), Some(4));
    for auc in col.as_array().expect("columnar") {
        let auc = auc.as_f64().expect("finite AUC");
        assert!((0.0..=1.0).contains(&auc), "{auc}");
    }
    assert!(md.contains("# Sweep report — smoke"), "{md}");

    let dir = golden_dir();
    std::fs::create_dir_all(&dir).expect("golden dir");
    let update = std::env::var_os("GLMIA_UPDATE_GOLDEN").is_some();
    for (name, fresh) in [("sweep.json", &json), ("report.md", &md)] {
        let path = dir.join(name);
        if update || !path.exists() {
            std::fs::write(&path, fresh).unwrap_or_else(|e| panic!("writing {name}: {e}"));
            eprintln!("sweep_golden: wrote {} — commit it", path.display());
            continue;
        }
        let golden =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {name}: {e}"));
        assert_eq!(
            fresh, &golden,
            "{name} drifted from the golden copy; if the change is \
             intentional, regenerate with GLMIA_UPDATE_GOLDEN=1 and commit"
        );
    }
}

//! The parallel-evaluation determinism contract: `run_experiment` and
//! `replicate_experiment` produce bit-identical results at every thread
//! count, because the evaluation RNG is derived per `(seed, round, node)`
//! and results are reassembled in round/node order (see
//! `glmia_core::runner` module docs).

use glmia_core::prelude::AttackerModel;
use glmia_core::{
    replicate_experiment, run_experiment, run_experiment_traced, ExperimentConfig,
    ExperimentResult, Parallelism,
};
use glmia_data::DataPreset;
use glmia_gossip::{ChurnConfig, Defense, FaultPlan, LatencyDist, ProtocolKind, TopologyMode};
use proptest::prelude::*;

fn config(seed: u64) -> ExperimentConfig {
    ExperimentConfig::quick_test(DataPreset::FashionMnistLike)
        .with_protocol(ProtocolKind::Samo)
        .with_topology_mode(TopologyMode::Dynamic)
        .with_seed(seed)
}

fn run_at(seed: u64, parallelism: Parallelism) -> ExperimentResult {
    run_experiment(&config(seed).with_parallelism(parallelism)).unwrap()
}

#[test]
fn thread_count_is_invisible_to_results() {
    let serial = run_at(900, Parallelism::Fixed(1));
    for threads in [2, 3, 8] {
        let parallel = run_at(900, Parallelism::Fixed(threads));
        assert_eq!(serial, parallel, "{threads} threads diverged from serial");
        // Byte-level identity: the serialized forms match exactly.
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "{threads} threads serialized differently"
        );
    }
}

#[test]
fn auto_parallelism_matches_serial() {
    let serial = run_at(901, Parallelism::Fixed(1));
    let auto = run_at(901, Parallelism::Auto);
    assert_eq!(serial, auto);
}

#[test]
fn parallel_runs_are_repeatable() {
    let a = run_at(902, Parallelism::Fixed(4));
    let b = run_at(902, Parallelism::Fixed(4));
    assert_eq!(a, b);
}

#[test]
fn replicate_parallel_over_seeds_equals_serial() {
    let serial =
        replicate_experiment(&config(903).with_parallelism(Parallelism::Fixed(1)), 4).unwrap();
    for threads in [2, 4, 8] {
        let parallel = replicate_experiment(
            &config(903).with_parallelism(Parallelism::Fixed(threads)),
            4,
        )
        .unwrap();
        assert_eq!(serial, parallel, "{threads}-thread replication diverged");
        assert_eq!(parallel.seeds, vec![903, 904, 905, 906]);
    }
}

#[test]
fn eval_schedule_thinning_survives_parallelism() {
    let thin = |p: Parallelism| {
        run_experiment(
            &config(904)
                .with_rounds(7)
                .with_eval_every(3)
                .with_parallelism(p),
        )
        .unwrap()
    };
    let serial = thin(Parallelism::Fixed(1));
    let parallel = thin(Parallelism::Fixed(4));
    let rounds: Vec<usize> = parallel.rounds.iter().map(|r| r.round).collect();
    assert_eq!(rounds, vec![3, 6, 7]);
    assert_eq!(serial, parallel);
}

#[test]
fn fault_injected_runs_are_thread_count_invariant() {
    // Fault schedules and per-link RNG streams are derived from the seed,
    // never from evaluation order, so a churn + latency + drop scenario
    // must stay bit-identical from 1 thread to 8.
    let faulty = |p: Parallelism| {
        run_experiment(
            &config(906)
                .with_fault_plan(
                    FaultPlan::none()
                        .with_churn(ChurnConfig::new(0.3).with_downtime(40, 160))
                        .with_latency(LatencyDist::Uniform { min: 1, max: 7 })
                        .with_link_drop(0.1),
                )
                .with_parallelism(p),
        )
        .unwrap()
    };
    let serial = faulty(Parallelism::Fixed(1));
    for threads in [2, 8] {
        let parallel = faulty(Parallelism::Fixed(threads));
        assert_eq!(serial, parallel, "{threads}-thread faulty run diverged");
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&parallel).unwrap(),
            "{threads}-thread faulty run serialized differently"
        );
    }
}

#[test]
fn inert_fault_plans_do_not_change_results() {
    // `with_fault_plan(FaultPlan::none())` is normalized away in the
    // config, so results — and their bytes — match a plain run exactly.
    let plain = run_at(907, Parallelism::Fixed(4));
    let inert = run_experiment(
        &config(907)
            .with_fault_plan(FaultPlan::none())
            .with_parallelism(Parallelism::Fixed(4)),
    )
    .unwrap();
    assert_eq!(plain, inert);
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&inert).unwrap(),
    );
}

#[test]
fn coalition_attacker_under_churn_is_thread_count_invariant() {
    // The full threat matrix composed with fault injection: a colluding
    // coalition's restricted vantage, a defended shared surface and node
    // churn must all stay bit-identical from 1 thread to 8 — the observed
    // set is fixed up front and per-node RNGs are derived, never streamed.
    let threat = |p: Parallelism| {
        run_experiment_traced(
            &config(908)
                .with_attacker(AttackerModel::Coalition {
                    members: vec![0, 3],
                })
                .with_defense(Defense::GaussianNoise { std: 0.05 })
                .with_fault_plan(
                    FaultPlan::none().with_churn(ChurnConfig::new(0.3).with_downtime(40, 160)),
                )
                .with_parallelism(p),
        )
        .unwrap()
    };
    let (serial_result, serial_trace) = threat(Parallelism::Fixed(1));
    for threads in [2, 8] {
        let (parallel_result, parallel_trace) = threat(Parallelism::Fixed(threads));
        assert_eq!(
            serial_result, parallel_result,
            "{threads}-thread coalition run diverged"
        );
        assert_eq!(
            serde_json::to_string(serial_trace.events()).unwrap(),
            serde_json::to_string(parallel_trace.events()).unwrap(),
            "{threads}-thread coalition trace serialized differently"
        );
    }
}

#[test]
fn errors_surface_identically_under_parallelism() {
    // 8 nodes with view size 9 is infeasible at any thread count.
    for p in [Parallelism::Fixed(1), Parallelism::Fixed(4)] {
        assert!(run_experiment(&config(905).with_view_size(9).with_parallelism(p)).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: for arbitrary seeds and thread counts, the parallel
    /// pipeline is bit-identical to the serial path.
    #[test]
    fn any_seed_any_thread_count_matches_serial(
        seed in 0u64..1_000_000,
        threads in 2usize..6,
    ) {
        let serial = run_at(seed, Parallelism::Fixed(1));
        let parallel = run_at(seed, Parallelism::Fixed(threads));
        prop_assert_eq!(serial, parallel);
    }

    /// Property: the inert threat model — an explicit omniscient attacker
    /// and no defense — is normalized away entirely, so the trace stream
    /// is byte-identical to one from a config that never set the fields.
    #[test]
    fn inert_threat_models_leave_traces_byte_identical(
        seed in 0u64..1_000_000,
    ) {
        let (bare_result, bare_trace) =
            run_experiment_traced(&config(seed)).unwrap();
        let (inert_result, inert_trace) = run_experiment_traced(
            &config(seed).with_attacker(AttackerModel::Omniscient),
        )
        .unwrap();
        prop_assert_eq!(bare_result, inert_result);
        prop_assert_eq!(
            serde_json::to_string(bare_trace.events()).unwrap(),
            serde_json::to_string(inert_trace.events()).unwrap()
        );
    }
}

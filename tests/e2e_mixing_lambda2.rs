//! Validates the empirical mixing-matrix reconstruction against the
//! analytic spectrum: on a *synchronous* schedule over a static k-regular
//! graph every node merges exactly its k neighbors' models each round, so
//! the reconstructed `W_t` is the analytic `(A + I)/(k + 1)` itself and
//! their λ₂ must agree to numerical precision — while PeerSwap dynamics
//! rewire edges mid-run and must push the per-round spectrum away from
//! the static value.

use glmia_core::prelude::*;

fn synchronous(seed: u64) -> ExperimentConfig {
    // wake_std = 0 makes every node wake exactly once per round, turning
    // SAMO's buffered merge into the paper's idealized synchronous round.
    ExperimentConfig::quick_test(DataPreset::Cifar10Like)
        .with_protocol(ProtocolKind::Samo)
        .with_topology_mode(TopologyMode::Static)
        .with_wake_std(0.0)
        .with_seed(seed)
}

fn lambda2_records(trace: &RunTrace) -> (f64, Vec<(usize, f64)>) {
    let mut analytic = None;
    let mut rounds = Vec::new();
    for event in trace.events() {
        match event {
            TraceEvent::Topology(t) => analytic = Some(t.lambda2_analytic),
            TraceEvent::Mixing(m) => rounds.push((m.round, m.lambda2_round)),
            _ => {}
        }
    }
    (analytic.expect("trace carries a topology record"), rounds)
}

#[test]
fn synchronous_static_schedule_reproduces_the_analytic_lambda2() {
    let (_, trace) = run_experiment_traced(&synchronous(31)).unwrap();
    let (analytic, rounds) = lambda2_records(&trace);
    assert!(rounds.len() >= 3, "need a steady-state window");
    // Round 1 absorbs start-up effects (nothing buffered before the first
    // sends); from round 2 on each node merges exactly one model per
    // neighbor, so the reconstructed W_t is (A + I)/(k + 1) exactly.
    for (round, empirical) in rounds.iter().skip(1) {
        assert!(
            (empirical - analytic).abs() < 1e-9,
            "round {round}: empirical λ₂ {empirical} vs analytic {analytic}"
        );
    }
}

#[test]
fn spectral_records_are_thread_count_invariant() {
    // The whole spectral phase — sparse per-round λ₂ and the implicit
    // cumulative contraction — runs on seed-derived start vectors, so the
    // recorded bit patterns must not change with evaluation parallelism.
    let serial = synchronous(33).with_parallelism(Parallelism::Fixed(1));
    let (_, base) = run_experiment_traced(&serial).unwrap();
    let base_events = serde_json::to_string(base.events()).unwrap();
    for threads in [2, 8] {
        let config = synchronous(33).with_parallelism(Parallelism::Fixed(threads));
        let (_, trace) = run_experiment_traced(&config).unwrap();
        assert_eq!(
            base_events,
            serde_json::to_string(trace.events()).unwrap(),
            "{threads}-thread trace events diverged from serial"
        );
    }
}

#[test]
fn peerswap_dynamics_diverge_from_the_static_spectrum() {
    let config = synchronous(31).with_topology_mode(TopologyMode::Dynamic);
    let (_, trace) = run_experiment_traced(&config).unwrap();
    let (analytic, rounds) = lambda2_records(&trace);
    let max_gap = rounds
        .iter()
        .skip(1)
        .map(|(_, empirical)| (empirical - analytic).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max_gap > 1e-6,
        "PeerSwap rewires edges each round, so some W_t must leave the \
         static spectrum (max gap {max_gap})"
    );
}

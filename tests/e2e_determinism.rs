//! Cross-crate reproducibility: a whole experiment is a pure function of
//! its config (seed included), and results serialize round-trip.

use glmia_core::{run_experiment, ExperimentConfig, ExperimentResult};
use glmia_data::DataPreset;
use glmia_gossip::{ProtocolKind, TopologyMode};

fn config(seed: u64) -> ExperimentConfig {
    ExperimentConfig::quick_test(DataPreset::Purchase100Like)
        .with_protocol(ProtocolKind::Samo)
        .with_topology_mode(TopologyMode::Dynamic)
        .with_seed(seed)
}

#[test]
fn identical_configs_produce_identical_results() {
    let a = run_experiment(&config(101)).unwrap();
    let b = run_experiment(&config(101)).unwrap();
    assert_eq!(a, b);
}

#[test]
fn seed_changes_everything() {
    let a = run_experiment(&config(101)).unwrap();
    let b = run_experiment(&config(102)).unwrap();
    assert_ne!(a, b);
}

#[test]
fn results_serialize_round_trip() {
    let result = run_experiment(&config(103)).unwrap();
    let json = serde_json::to_string(&result).unwrap();
    let back: ExperimentResult = serde_json::from_str(&json).unwrap();
    assert_eq!(result, back);
}

#[test]
fn config_serializes_round_trip() {
    let c = config(104);
    let json = serde_json::to_string(&c).unwrap();
    let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(c, back);
    // And the deserialized config reproduces the same run.
    assert_eq!(run_experiment(&c).unwrap(), run_experiment(&back).unwrap());
}

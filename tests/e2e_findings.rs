//! End-to-end directional findings: small-scale versions of the paper's
//! RQ1–RQ4 takeaways. Margins are forgiving — these assert the *direction*
//! of each effect, not its magnitude.

use glmia_core::{run_experiment, ExperimentConfig, ExperimentResult};
use glmia_data::{DataPreset, Partition};
use glmia_gossip::{ProtocolKind, TopologyMode};

fn base_config(seed: u64) -> ExperimentConfig {
    ExperimentConfig::bench_scale(DataPreset::Cifar10Like)
        .with_nodes(16)
        .with_rounds(16)
        .with_eval_every(4)
        .with_seed(seed)
}

/// Mean MIA vulnerability over all evaluated rounds.
fn mean_vuln(result: &ExperimentResult) -> f64 {
    let xs: Vec<f64> = result
        .rounds
        .iter()
        .map(|r| r.mia_vulnerability.mean)
        .collect();
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[test]
fn rq1_samo_does_not_leak_more_than_base_gossip() {
    let base = run_experiment(
        &base_config(1)
            .with_protocol(ProtocolKind::BaseGossip)
            .with_view_size(5),
    )
    .unwrap();
    let samo = run_experiment(
        &base_config(1)
            .with_protocol(ProtocolKind::Samo)
            .with_view_size(5),
    )
    .unwrap();
    assert!(
        mean_vuln(&samo) <= mean_vuln(&base) + 0.03,
        "SAMO vuln {:.3} should not exceed Base {:.3}",
        mean_vuln(&samo),
        mean_vuln(&base)
    );
    // SAMO pays for it in communication (sends to all neighbors).
    assert!(samo.messages_sent > base.messages_sent);
}

#[test]
fn rq2_dynamic_does_not_leak_more_than_static_on_sparse_graphs() {
    let static_run = run_experiment(
        &base_config(2)
            .with_view_size(2)
            .with_topology_mode(TopologyMode::Static),
    )
    .unwrap();
    let dynamic_run = run_experiment(
        &base_config(2)
            .with_view_size(2)
            .with_topology_mode(TopologyMode::Dynamic),
    )
    .unwrap();
    assert!(
        mean_vuln(&dynamic_run) <= mean_vuln(&static_run) + 0.03,
        "dynamic vuln {:.3} should not exceed static {:.3}",
        mean_vuln(&dynamic_run),
        mean_vuln(&static_run)
    );
}

#[test]
fn rq3_larger_views_do_not_hurt_utility() {
    let sparse = run_experiment(&base_config(3).with_view_size(2)).unwrap();
    let dense = run_experiment(&base_config(3).with_view_size(10)).unwrap();
    let sparse_best = sparse.best_point().unwrap();
    let dense_best = dense.best_point().unwrap();
    assert!(
        dense_best.utility >= sparse_best.utility - 0.05,
        "dense utility {:.3} vs sparse {:.3}",
        dense_best.utility,
        sparse_best.utility
    );
    // Communication scales with the view size under SAMO.
    assert!(dense.messages_sent > sparse.messages_sent * 3);
}

#[test]
fn rq4_noniid_increases_vulnerability() {
    let iid = run_experiment(&base_config(4).with_partition(Partition::Iid)).unwrap();
    let skewed =
        run_experiment(&base_config(4).with_partition(Partition::Dirichlet { beta: 0.1 })).unwrap();
    assert!(
        mean_vuln(&skewed) > mean_vuln(&iid) - 0.02,
        "non-IID vuln {:.3} should meet or exceed IID {:.3}",
        mean_vuln(&skewed),
        mean_vuln(&iid)
    );
}

#[test]
fn training_makes_models_leak_more_than_initialization() {
    let result = run_experiment(&base_config(5)).unwrap();
    let first = result.rounds.first().unwrap();
    let last = result.final_round();
    // Vulnerability grows (or at worst stagnates) as training overfits.
    assert!(
        last.mia_vulnerability.mean >= first.mia_vulnerability.mean - 0.05,
        "vuln fell from {:.3} to {:.3}",
        first.mia_vulnerability.mean,
        last.mia_vulnerability.mean
    );
    // Utility improves over training.
    assert!(
        last.test_accuracy.mean > first.test_accuracy.mean,
        "accuracy fell from {:.3} to {:.3}",
        first.test_accuracy.mean,
        last.test_accuracy.mean
    );
}

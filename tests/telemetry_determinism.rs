//! The telemetry subsystem's two determinism contracts:
//!
//! 1. **Inertness when off** — a run without `with_telemetry(true)` is
//!    byte-identical to a pre-telemetry run: same results, same
//!    `events.jsonl` bytes, and no telemetry artifacts at all.
//! 2. **Thread-count independence when on** — the `telemetry.jsonl`
//!    side-stream is byte-identical at any thread count, because per-round
//!    records drain only simulation-thread instruments at round barriers
//!    and the totals line sums commutative atomics.
//!
//! Only `profile.json` (wall-clock spans) is exempt from reproducibility.

use glmia_core::{run_experiment_traced, ExperimentConfig, Parallelism};
use glmia_data::DataPreset;
use glmia_gossip::{ProtocolKind, TopologyMode};
use glmia_trace::{RunSummary, RunTrace};
use proptest::prelude::*;

fn config(seed: u64) -> ExperimentConfig {
    ExperimentConfig::quick_test(DataPreset::FashionMnistLike)
        .with_protocol(ProtocolKind::Samo)
        .with_topology_mode(TopologyMode::Dynamic)
        .with_seed(seed)
}

fn run(seed: u64, telemetry: bool, threads: usize) -> (String, RunTrace) {
    let (result, trace) = run_experiment_traced(
        &config(seed)
            .with_telemetry(telemetry)
            .with_parallelism(Parallelism::Fixed(threads)),
    )
    .unwrap();
    (serde_json::to_string(&result).unwrap(), trace)
}

#[test]
fn telemetry_off_runs_write_no_artifacts() {
    let (_, trace) = run(300, false, 2);
    assert!(!trace.has_telemetry());
    assert!(trace.telemetry_jsonl().is_none());
    assert!(trace.profile_json().is_none());
    let dir = std::env::temp_dir().join(format!("glmia-tel-off-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    trace.write_to_dir(&dir).unwrap();
    assert!(dir.join("events.jsonl").exists());
    assert!(
        !dir.join("telemetry.jsonl").exists(),
        "inert run grew a side-stream"
    );
    assert!(
        !dir.join("profile.json").exists(),
        "inert run grew a profile"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_on_runs_write_both_artifacts() {
    let (_, trace) = run(301, true, 2);
    assert!(trace.has_telemetry());
    let stream = trace.telemetry_jsonl().unwrap();
    assert!(stream.starts_with("{\"type\":\"TelemetryHeader\",\"schema\":5,"));
    assert!(stream.contains("\"type\":\"TelemetryTotals\""));
    assert!(trace.profile_json().is_some());
}

#[test]
fn telemetry_side_stream_is_byte_identical_across_thread_counts() {
    let (result_1, trace_1) = run(302, true, 1);
    let stream_1 = trace_1.telemetry_jsonl().unwrap();
    for threads in [2, 8] {
        let (result_n, trace_n) = run(302, true, threads);
        assert_eq!(result_1, result_n, "{threads}-thread results diverged");
        assert_eq!(
            stream_1,
            trace_n.telemetry_jsonl().unwrap(),
            "{threads}-thread telemetry.jsonl diverged from serial"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property: for arbitrary seeds, flipping telemetry on changes
    /// neither the results nor a single byte of `events.jsonl`, and the
    /// derived summary of the event stream (what `analyze` serializes)
    /// is byte-identical too.
    #[test]
    fn telemetry_is_inert_for_results_events_and_summaries(
        seed in 0u64..1_000_000,
        threads in 1usize..4,
    ) {
        let (off_result, off_trace) = run(seed, false, threads);
        let (on_result, on_trace) = run(seed, true, threads);
        prop_assert_eq!(off_result, on_result);
        prop_assert_eq!(off_trace.events_jsonl(), on_trace.events_jsonl());
        let summary = |trace: &RunTrace| {
            let header = serde_json::from_str(
                trace.events_jsonl().lines().next().unwrap(),
            )
            .unwrap();
            RunSummary::from_events(&header, trace.events()).to_json_pretty()
        };
        prop_assert_eq!(summary(&off_trace), summary(&on_trace));
    }

    /// Property: the side-stream's determinism holds for arbitrary seeds,
    /// not just the pinned ones above.
    #[test]
    fn any_seed_side_stream_is_thread_count_invariant(
        seed in 0u64..1_000_000,
    ) {
        let (_, serial) = run(seed, true, 1);
        let (_, parallel) = run(seed, true, 3);
        prop_assert_eq!(
            serial.telemetry_jsonl().unwrap(),
            parallel.telemetry_jsonl().unwrap()
        );
    }
}

//! In-process determinism suite for the sweep runner: aggregates are
//! byte-identical at any worker count and across any resume split, a
//! truncated checkpoint tail heals, and corrupt or stale checkpoints are
//! refused with the typed [`SweepError::Checkpoint`].

use std::path::{Path, PathBuf};

use glmia_core::Parallelism;
use glmia_sweep::{run_sweep, Scenario, SweepError};

const TEXT: &str = "[scenario]\nname = \"runner\"\npreset = \"quick\"\ndataset = \"fashion\"\nnodes = 6\nk = 2\nrounds = 2\neval-every = 1\n\n[seeds]\nlist = [1, 2]\n\n[axes]\nprotocol = [\"base\", \"samo\"]\n";

fn scenario() -> Scenario {
    Scenario::parse(TEXT).expect("runner scenario parses")
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("glmia-sweep-runner-{}-{tag}", std::process::id()))
}

fn artifacts(dir: &Path) -> (Vec<u8>, Vec<u8>) {
    (
        std::fs::read(dir.join("sweep.json")).expect("sweep.json written"),
        std::fs::read(dir.join("report.md")).expect("report.md written"),
    )
}

#[test]
fn aggregates_are_byte_identical_across_worker_counts() {
    let one = tmp("w1");
    let eight = tmp("w8");
    let a = run_sweep(&scenario(), &one, Parallelism::Fixed(1), false).unwrap();
    let b = run_sweep(&scenario(), &eight, Parallelism::Fixed(8), false).unwrap();
    assert_eq!(a.total, 4);
    assert_eq!((a.ran, a.resumed), (4, 0));
    assert_eq!((b.ran, b.resumed), (4, 0));
    assert_eq!(
        artifacts(&one),
        artifacts(&eight),
        "sweep.json/report.md must not depend on worker count"
    );
    std::fs::remove_dir_all(&one).ok();
    std::fs::remove_dir_all(&eight).ok();
}

#[test]
fn resuming_from_any_prefix_reproduces_the_uninterrupted_bytes() {
    let full = tmp("full");
    run_sweep(&scenario(), &full, Parallelism::Fixed(2), false).unwrap();
    let reference = artifacts(&full);
    let checkpoint =
        std::fs::read_to_string(full.join("checkpoint.jsonl")).expect("checkpoint written");
    let lines: Vec<&str> = checkpoint.lines().collect();
    assert_eq!(lines.len(), 5, "header + 4 cells");

    // Simulate a kill after each possible number of completed cells
    // (0..=3), then resume and demand the reference bytes.
    for completed in 0..4 {
        let dir = tmp(&format!("prefix{completed}"));
        std::fs::create_dir_all(&dir).unwrap();
        let mut prefix: String = lines[..=completed].join("\n");
        prefix.push('\n');
        std::fs::write(dir.join("checkpoint.jsonl"), prefix).unwrap();
        let outcome = run_sweep(&scenario(), &dir, Parallelism::Fixed(1), false).unwrap();
        assert_eq!(outcome.resumed, completed, "prefix of {completed} cells");
        assert_eq!(outcome.ran, 4 - completed);
        assert_eq!(
            artifacts(&dir),
            reference,
            "resume after {completed} cells diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&full).ok();
}

#[test]
fn truncated_checkpoint_tail_heals_on_resume() {
    let full = tmp("trunc-src");
    run_sweep(&scenario(), &full, Parallelism::Fixed(1), false).unwrap();
    let reference = artifacts(&full);
    let checkpoint =
        std::fs::read_to_string(full.join("checkpoint.jsonl")).expect("checkpoint written");

    // Chop the file mid-way through the last record, as a kill inside
    // the final write would: the torn line is dropped, its cell reruns.
    let torn = &checkpoint[..checkpoint.len() - 25];
    assert!(!torn.ends_with('\n'));
    let dir = tmp("trunc");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("checkpoint.jsonl"), torn).unwrap();
    let outcome = run_sweep(&scenario(), &dir, Parallelism::Fixed(1), false).unwrap();
    assert_eq!(outcome.resumed, 3, "three intact records survive");
    assert_eq!(outcome.ran, 1, "the torn cell reruns");
    assert_eq!(artifacts(&dir), reference);

    // The healed checkpoint is complete and canonical: rerunning resumes
    // all four cells without executing anything.
    let again = run_sweep(&scenario(), &dir, Parallelism::Fixed(1), false).unwrap();
    assert_eq!((again.resumed, again.ran), (4, 0));
    assert_eq!(artifacts(&dir), reference);

    std::fs::remove_dir_all(&full).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoints_from_a_different_scenario_are_refused() {
    let full = tmp("stale-src");
    run_sweep(&scenario(), &full, Parallelism::Fixed(1), false).unwrap();
    let checkpoint =
        std::fs::read_to_string(full.join("checkpoint.jsonl")).expect("checkpoint written");

    // Same cell count and schema, different grid: the hash in the header
    // no longer matches what the scenario expands to.
    let edited = Scenario::parse(&TEXT.replace("list = [1, 2]", "list = [3, 4]")).unwrap();
    let dir = tmp("stale");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("checkpoint.jsonl"), &checkpoint).unwrap();
    let err = run_sweep(&edited, &dir, Parallelism::Fixed(1), false).unwrap_err();
    match err {
        SweepError::Checkpoint(message) => {
            assert!(message.contains("grid hash"), "{message}");
        }
        other => panic!("expected Checkpoint, got {other:?}"),
    }
    std::fs::remove_dir_all(&full).ok();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoint_lines_are_refused() {
    let full = tmp("corrupt-src");
    run_sweep(&scenario(), &full, Parallelism::Fixed(1), false).unwrap();
    let checkpoint =
        std::fs::read_to_string(full.join("checkpoint.jsonl")).expect("checkpoint written");
    let lines: Vec<&str> = checkpoint.lines().collect();

    // A malformed *complete* line (newline-terminated garbage) is
    // corruption, not a torn tail.
    let dir = tmp("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("checkpoint.jsonl"),
        format!("{}\n{}\nnot json\n", lines[0], lines[1]),
    )
    .unwrap();
    let err = run_sweep(&scenario(), &dir, Parallelism::Fixed(1), false).unwrap_err();
    assert!(
        matches!(err, SweepError::Checkpoint(_)),
        "expected Checkpoint, got {err:?}"
    );

    // A record whose config hash does not match its grid cell is stale.
    let swapped = lines[1].replace(
        &lines[1][lines[1].find("\"config_hash\":\"").unwrap() + 15..][..16],
        "0000000000000000",
    );
    std::fs::write(
        dir.join("checkpoint.jsonl"),
        format!("{}\n{swapped}\n", lines[0]),
    )
    .unwrap();
    let err = run_sweep(&scenario(), &dir, Parallelism::Fixed(1), false).unwrap_err();
    match err {
        SweepError::Checkpoint(message) => {
            assert!(message.contains("stale"), "{message}");
        }
        other => panic!("expected Checkpoint, got {other:?}"),
    }

    std::fs::remove_dir_all(&full).ok();
    std::fs::remove_dir_all(&dir).ok();
}

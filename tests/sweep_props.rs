//! Property tests pinning the sweep contracts: grid expansion is a pure,
//! duplicate-free function of scenario *content* (stable under axis
//! declaration order), and checkpoint records survive a write/read
//! round-trip while stale or mismatched checkpoints are rejected.

use std::collections::BTreeMap;

use glmia_sweep::{Scenario, SweepGrid};
use glmia_trace::{
    read_checkpoint, CellRecord, CellSummary, CheckpointWriter, SweepHeaderRecord,
    SWEEP_SCHEMA_VERSION,
};
use proptest::prelude::*;

/// Builds scenario text from axis declarations given in `order` (a list
/// of `(key, values-literal)` pairs) so tests can permute the file layout.
fn scenario_text(axes: &[(String, String)], seeds: &[u64]) -> String {
    let mut text = String::from(
        "[scenario]\nname = \"prop\"\npreset = \"quick\"\nnodes = 6\nk = 2\nrounds = 2\neval-every = 1\n\n[seeds]\nlist = [",
    );
    text.push_str(
        &seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    );
    text.push_str("]\n\n[axes]\n");
    for (key, values) in axes {
        text.push_str(&format!("{key} = {values}\n"));
    }
    text
}

/// A non-empty, order-preserving subset of `pool` selected by `mask`
/// bits, rendered as a TOML array literal.
fn subset(pool: &[&str], mask: u32) -> String {
    let picked: Vec<&str> = pool
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, s)| *s)
        .collect();
    format!("[{}]", picked.join(", "))
}

/// A strategy over small axis sets drawn from value pools the quick-test
/// preset accepts. Each axis draws a non-empty bitmask over its pool.
fn axes_strategy() -> impl Strategy<Value = Vec<(String, String)>> {
    let protocol = (1u32..16).prop_map(|mask| {
        let pool = ["\"base\"", "\"samo\"", "\"somo\"", "\"same\""];
        ("protocol".to_string(), subset(&pool, mask))
    });
    let topology = (1u32..4).prop_map(|mask| {
        (
            "topology".to_string(),
            subset(&["\"static\"", "\"dynamic\""], mask),
        )
    });
    let rounds = (1u32..8).prop_map(|mask| ("rounds".to_string(), subset(&["1", "2", "3"], mask)));
    (protocol, topology, rounds).prop_map(|(p, t, r)| vec![p, t, r])
}

/// The `perm`-th reordering of a three-element axis list.
fn permute(axes: &[(String, String)], perm: usize) -> Vec<(String, String)> {
    const ORDERS: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    ORDERS[perm % 6].iter().map(|&i| axes[i].clone()).collect()
}

fn signature(grid: &SweepGrid) -> Vec<(u64, u64)> {
    grid.cells.iter().map(|c| (c.config_hash, c.seed)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn expansion_is_deterministic_and_duplicate_free(
        axes in axes_strategy(),
        seeds in proptest::collection::vec(0u64..50, 1..4),
    ) {
        let text = scenario_text(&axes, &seeds);
        let a = SweepGrid::expand(&Scenario::parse(&text).unwrap()).unwrap();
        let b = SweepGrid::expand(&Scenario::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(a.scenario_hash, b.scenario_hash);
        prop_assert_eq!(signature(&a), signature(&b));
        // Duplicate-free by construction: every (config, seed) pair is
        // unique, and indices are dense.
        let mut pairs = signature(&a);
        pairs.sort_unstable();
        pairs.dedup();
        prop_assert_eq!(pairs.len(), a.cells.len());
        for (i, cell) in a.cells.iter().enumerate() {
            prop_assert_eq!(cell.index, i);
        }
    }

    #[test]
    fn axis_declaration_order_is_irrelevant(
        (axes, perm) in (axes_strategy(), 0usize..6),
        seeds in proptest::collection::vec(0u64..50, 1..3),
    ) {
        let axes = permute(&axes, perm);
        let shuffled = scenario_text(&axes, &seeds);
        let mut sorted_axes = axes.clone();
        sorted_axes.sort();
        let sorted = scenario_text(&sorted_axes, &seeds);
        let a = SweepGrid::expand(&Scenario::parse(&shuffled).unwrap()).unwrap();
        let b = SweepGrid::expand(&Scenario::parse(&sorted).unwrap()).unwrap();
        prop_assert_eq!(a.scenario_hash, b.scenario_hash);
        prop_assert_eq!(signature(&a), signature(&b));
    }

    #[test]
    fn seed_spelling_is_canonicalized(
        mut seeds in proptest::collection::vec(0u64..50, 1..6),
    ) {
        let axes = vec![("protocol".to_string(), "[\"base\"]".to_string())];
        let given = scenario_text(&axes, &seeds);
        seeds.sort_unstable();
        seeds.dedup();
        seeds.reverse();
        let reversed = scenario_text(&axes, &seeds);
        let a = SweepGrid::expand(&Scenario::parse(&given).unwrap()).unwrap();
        let b = SweepGrid::expand(&Scenario::parse(&reversed).unwrap()).unwrap();
        prop_assert_eq!(a.scenario_hash, b.scenario_hash);
        prop_assert_eq!(signature(&a), signature(&b));
    }

    #[test]
    fn checkpoint_records_round_trip(
        cell in 0usize..1000,
        seed in 0u64..u64::MAX,
        acc in 0.0f64..1.0,
        auc in 0.0f64..1.0,
        sent in 0u64..u64::MAX,
        crashes in 0u64..1_000_000,
        cumulative in proptest::option::of(0.0f64..2.0),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "glmia-sweep-prop-{}-{cell}-{seed}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.jsonl");
        let header = SweepHeaderRecord {
            schema: SWEEP_SCHEMA_VERSION,
            scenario: "prop".to_string(),
            scenario_hash: format!("{seed:016x}"),
            cells: cell + 1,
        };
        let mut axes = BTreeMap::new();
        axes.insert("protocol".to_string(), "samo".to_string());
        let record = CellRecord {
            cell,
            config_hash: format!("{:016x}", seed ^ 0xabcd),
            seed,
            axes,
            summary: CellSummary {
                final_test_accuracy: acc,
                final_train_accuracy: acc,
                final_gen_error: 0.0,
                final_mia_vulnerability: auc,
                final_mia_auc: auc,
                best_round: cell,
                best_test_accuracy: acc,
                mia_vulnerability_at_best: auc,
                lambda2_analytic: 0.5,
                lambda2_cumulative: cumulative,
                messages_sent: sent,
                messages_dropped: 0,
                crashes,
                observed_nodes: 4,
                attacker: "omniscient".to_string(),
                defense: "none".to_string(),
                local_updates: sent,
                evals: 2,
            },
        };
        let mut writer = CheckpointWriter::create(&path, &header).unwrap();
        writer.append(&record).unwrap();
        drop(writer);
        let file = read_checkpoint(&path).unwrap();
        prop_assert_eq!(&file.header, &header);
        prop_assert_eq!(file.cells.len(), 1);
        prop_assert_eq!(&file.cells[0], &record);
        prop_assert!(!file.truncated_tail);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A checkpoint whose header names a different grid hash must be refused
/// by the runner (exit-2 path) rather than silently reused — here pinned
/// at the reader level plus the hash comparison the runner performs.
#[test]
fn stale_scenario_hashes_do_not_match() {
    const TEXT: &str = "[scenario]\nname = \"prop\"\npreset = \"quick\"\nnodes = 6\nk = 2\nrounds = 2\neval-every = 1\n\n[seeds]\nlist = [1]\n\n[axes]\nprotocol = [\"base\", \"samo\"]\n";
    let grid = SweepGrid::expand(&Scenario::parse(TEXT).unwrap()).unwrap();
    let edited = TEXT.replace("[\"base\", \"samo\"]", "[\"base\"]");
    let other = SweepGrid::expand(&Scenario::parse(&edited).unwrap()).unwrap();
    assert_ne!(
        grid.hash_hex(),
        other.hash_hex(),
        "editing the grid must change the checkpoint binding hash"
    );
}

//! End-to-end spectral findings (§4 / Figure 8) at the paper's 150-node
//! scale.

use glmia_core::{lambda2_series, Lambda2Config};
use glmia_gossip::TopologyMode;

fn config(k: usize, mode: TopologyMode) -> Lambda2Config {
    Lambda2Config {
        nodes: 150,
        view_size: k,
        iterations: 8,
        runs: 5,
        mode,
        seed: 7,
    }
}

#[test]
fn dynamic_contracts_much_faster_than_static_at_k2() {
    let st = lambda2_series(&config(2, TopologyMode::Static)).unwrap();
    let dy = lambda2_series(&config(2, TopologyMode::Dynamic)).unwrap();
    let t = st.mean.len() - 1;
    assert!(
        dy.mean[t] < st.mean[t] * 0.8,
        "dynamic {:.4} should be well below static {:.4}",
        dy.mean[t],
        st.mean[t]
    );
}

#[test]
fn higher_degree_contracts_faster() {
    let k2 = lambda2_series(&config(2, TopologyMode::Static)).unwrap();
    let k10 = lambda2_series(&config(10, TopologyMode::Static)).unwrap();
    for t in 0..k2.mean.len() {
        assert!(
            k10.mean[t] <= k2.mean[t] + 1e-9,
            "iteration {t}: k=10 {:.4} vs k=2 {:.4}",
            k10.mean[t],
            k2.mean[t]
        );
    }
}

#[test]
fn dynamic_variance_is_negligible() {
    // The paper: "the standard deviation is negligible in the dynamic case".
    let dy = lambda2_series(&config(2, TopologyMode::Dynamic)).unwrap();
    let last_std = *dy.std.last().unwrap();
    let last_mean = *dy.mean.last().unwrap();
    assert!(
        last_std < (last_mean * 0.5).max(0.02),
        "dynamic std {last_std:.4} too large relative to mean {last_mean:.4}"
    );
}

#[test]
fn static_series_matches_lambda2_powers() {
    // In the static setting λ₂(W*) = λ₂(W)^T exactly.
    let st = lambda2_series(&config(5, TopologyMode::Static)).unwrap();
    let first = st.mean[0];
    for (t, &value) in st.mean.iter().enumerate() {
        let expected = first.powi(t as i32 + 1);
        assert!(
            (value - expected).abs() < 0.05,
            "iteration {}: {:.4} vs λ₂^T {:.4}",
            t + 1,
            value,
            expected
        );
    }
}

//! Malformed-trace corpus: every corrupted `events.jsonl` under
//! `tests/fixtures/corpus/` must fail with a *typed*, line-numbered
//! [`TraceReadError`] — never a panic, never a silently partial parse.
//! The CLI-level contract (corrupt trace → `glmia analyze` exit 2) is
//! covered by `crates/cli/tests/cli_e2e.rs`.

use std::path::PathBuf;

use glmia_core::prelude::{read_trace, TraceReadError};

fn corpus(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/fixtures/corpus")
        .join(name)
}

#[test]
fn truncated_final_line_is_rejected_with_its_line_number() {
    let err = read_trace(corpus("truncated.jsonl")).unwrap_err();
    assert!(
        matches!(err, TraceReadError::Truncated { line: 3 }),
        "{err:?}"
    );
    assert_eq!(
        err.to_string(),
        "trace line 3: truncated final line (no newline)"
    );
}

#[test]
fn unknown_schema_is_rejected_at_the_header() {
    let err = read_trace(corpus("unknown_schema.jsonl")).unwrap_err();
    assert!(
        matches!(
            err,
            TraceReadError::UnsupportedSchema {
                line: 1,
                found: 99,
                supported: 4,
            }
        ),
        "{err:?}"
    );
    assert!(err.to_string().contains("unsupported schema version 99"));
}

#[test]
fn non_finite_floats_are_rejected_with_line_and_context() {
    // `1e999` overflows f64. Depending on serde_json's float handling it
    // surfaces either as a number-out-of-range parse error (Malformed) or
    // parses to infinity and trips the reader's finiteness check
    // (NonFiniteValue). Both are typed, line-numbered rejections.
    let err = read_trace(corpus("non_finite.jsonl")).unwrap_err();
    match err {
        TraceReadError::NonFiniteValue { line, field } => {
            assert_eq!(line, 2);
            assert_eq!(field, "lambda2_round");
        }
        TraceReadError::Malformed { line, .. } => assert_eq!(line, 2),
        other => panic!("expected NonFiniteValue or Malformed, got {other:?}"),
    }
}

#[test]
fn out_of_order_rounds_are_rejected_with_both_indices() {
    let err = read_trace(corpus("out_of_order.jsonl")).unwrap_err();
    assert!(
        matches!(
            err,
            TraceReadError::OutOfOrderRound {
                line: 3,
                seed: 1,
                prev: 2,
                found: 1,
            }
        ),
        "{err:?}"
    );
    assert_eq!(
        err.to_string(),
        "trace line 3: out-of-order round for seed 1: 1 after 2"
    );
}

#[test]
fn malformed_threat_records_are_rejected_with_their_line() {
    // Schema-4 header, then a Threat record whose `attacker` field is a
    // number instead of a descriptor string — a typed, line-numbered
    // rejection, exactly like every other corrupt record kind.
    let err = read_trace(corpus("bad_threat.jsonl")).unwrap_err();
    assert!(
        matches!(err, TraceReadError::Malformed { line: 2, .. }),
        "{err:?}"
    );
}

#[test]
fn non_json_lines_are_rejected_as_malformed() {
    let err = read_trace(corpus("not_json.jsonl")).unwrap_err();
    assert!(
        matches!(err, TraceReadError::Malformed { line: 2, .. }),
        "{err:?}"
    );
}

#[test]
fn streams_without_a_header_are_rejected() {
    let err = read_trace(corpus("missing_header.jsonl")).unwrap_err();
    assert!(matches!(err, TraceReadError::MissingHeader), "{err:?}");
    assert_eq!(err.to_string(), "trace line 1: expected a Header record");
}

#[test]
fn missing_files_surface_as_io_errors() {
    let err = read_trace(corpus("does_not_exist.jsonl")).unwrap_err();
    assert!(matches!(err, TraceReadError::Io(_)), "{err:?}");
}

//! Golden-file regression test for the `analyze` derivation pipeline.
//!
//! A hand-written schema-4 fixture trace under `tests/fixtures/golden/`
//! is derived into `summary.json` + `report.md` exactly the way
//! `glmia analyze` does it, and the bytes are compared against committed
//! golden copies. Any byte drift in the summary derivation or the
//! Markdown renderer fails here first, with a regeneration escape hatch
//! (`GLMIA_UPDATE_GOLDEN=1`) for intentional changes.

use std::path::PathBuf;

use glmia_core::prelude::{read_trace, RunSummary};
use glmia_metrics::render_markdown_report;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/golden")
}

fn derive_outputs() -> (String, String) {
    let events_path = fixture_dir().join("events.jsonl");
    let (header, events) =
        read_trace(&events_path).unwrap_or_else(|e| panic!("fixture trace must read cleanly: {e}"));
    let summary = RunSummary::from_events(&header, &events);
    (summary.to_json_pretty(), render_markdown_report(&summary))
}

#[test]
fn fixture_trace_derives_the_expected_fault_aggregates() {
    // Semantic floor independent of the golden bytes: node 2 is down
    // ticks 50-150 of a 4-node run with 100-tick rounds, so both round
    // windows lose 50 node-ticks of 400: availability 0.875.
    let (json, md) = derive_outputs();
    let value: serde_json::Value = serde_json::from_str(&json).expect("summary is valid JSON");
    assert_eq!(value["schema"].as_u64(), Some(4));
    assert_eq!(value["threat"]["attacker"].as_str(), Some("omniscient"));
    assert_eq!(value["threat"]["defense"].as_str(), Some("gaussian:0.05"));
    assert_eq!(value["threat"]["observations"].as_u64(), Some(4));
    assert!(md.contains("## Threat model"), "{md}");
    assert_eq!(value["faults"]["crashes"].as_u64(), Some(1));
    assert_eq!(value["faults"]["recoveries"].as_u64(), Some(1));
    assert_eq!(value["faults"]["offline_drops"].as_u64(), Some(1));
    assert_eq!(value["faults"]["mean_availability"].as_f64(), Some(0.875));
    assert_eq!(value["rounds"][0]["availability"].as_f64(), Some(0.875));
    assert_eq!(value["rounds"][1]["availability"].as_f64(), Some(0.875));
    assert_eq!(value["rounds"][0]["fault_drops"].as_u64(), Some(1));
    assert_eq!(value["rounds"][1]["fault_drops"].as_u64(), Some(0));
    assert!(md.contains("## Fault injection"), "{md}");
    assert!(md.contains("| 1 | 1 | 1 | 0.8750 |"), "{md}");
}

#[test]
fn derivation_is_deterministic() {
    let (json_a, md_a) = derive_outputs();
    let (json_b, md_b) = derive_outputs();
    assert_eq!(json_a, json_b);
    assert_eq!(md_a, md_b);
}

#[test]
fn analyze_outputs_match_the_golden_files_byte_for_byte() {
    let (json, md) = derive_outputs();
    let dir = fixture_dir();
    let update = std::env::var_os("GLMIA_UPDATE_GOLDEN").is_some();
    for (name, fresh) in [("summary.json", &json), ("report.md", &md)] {
        let path = dir.join(name);
        if update || !path.exists() {
            std::fs::write(&path, fresh).unwrap_or_else(|e| panic!("writing {name}: {e}"));
            eprintln!("golden_analyze: wrote {} — commit it", path.display());
            continue;
        }
        let golden =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {name}: {e}"));
        assert_eq!(
            fresh, &golden,
            "{name} drifted from the golden copy; if the change is \
             intentional, regenerate with GLMIA_UPDATE_GOLDEN=1 and commit"
        );
    }
}

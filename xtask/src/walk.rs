//! Workspace traversal: find every Rust source the lint pass covers.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::scanner::{FileKind, ScannedFile};

/// Collects and preprocesses every `.rs` file under the workspace's
/// `crates/*/{src,tests,benches}`, `tests/` and `examples/` trees, in
/// deterministic (sorted) path order.
///
/// The `xtask/` tree itself is deliberately out of scope: it is build
/// tooling, not part of the simulator's determinism surface.
pub fn scan_workspace(root: &Path) -> io::Result<Vec<ScannedFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for crate_dir in sorted_dirs(&crates_dir)? {
            let crate_name = crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned());
            for (sub, kind) in [
                ("src", FileKind::Src),
                ("tests", FileKind::Tests),
                ("benches", FileKind::Benches),
            ] {
                collect(
                    root,
                    &crate_dir.join(sub),
                    crate_name.clone(),
                    kind,
                    &mut files,
                )?;
            }
        }
    }
    collect(root, &root.join("tests"), None, FileKind::Tests, &mut files)?;
    collect(
        root,
        &root.join("examples"),
        None,
        FileKind::Examples,
        &mut files,
    )?;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

/// Immediate subdirectories of `dir`, sorted by name.
fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut dirs: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    Ok(dirs)
}

/// Recursively scans `.rs` files under `dir` (no-op when absent).
fn collect(
    root: &Path,
    dir: &Path,
    crate_name: Option<String>,
    kind: FileKind,
    out: &mut Vec<ScannedFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(root, &path, crate_name.clone(), kind, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let source = fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(ScannedFile::new(rel, crate_name.clone(), kind, source));
        }
    }
    Ok(())
}

//! `cargo xtask` — workspace build tooling. See `cargo xtask help`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::output::{self, Format};

const USAGE: &str = "\
cargo xtask <task>

Tasks:
  lint    run the determinism & soundness static-analysis pass

lint options:
  --root <DIR>      workspace root to scan (default: parent of the xtask
                    manifest under cargo, else the current directory)
  --config <FILE>   lint.toml to use (default: <root>/lint.toml if present)
  --format <FMT>    text (default), json, or sarif
  --output <FILE>   write findings to FILE instead of the terminal; the
                    human summary still goes to stderr, so CI can upload
                    SARIF while the job output stays readable
  --list-rules      print the rule table and exit

Exit codes: 0 clean, 1 findings, 2 usage or configuration error.
With --format json|sarif the document is emitted even when clean (an
empty result set), so uploads are unconditional.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown task `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut output: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in xtask::rules::RULES {
                    println!("{:<24} {}", rule.name, squash(rule.summary));
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match iter.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root requires a directory"),
            },
            "--config" => match iter.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage_error("--config requires a file"),
            },
            "--format" => match iter.next().map(|v| Format::parse(v)) {
                Some(Ok(f)) => format = f,
                Some(Err(e)) => return usage_error(&e),
                None => return usage_error("--format requires text, json, or sarif"),
            },
            "--output" => match iter.next() {
                Some(v) => output = Some(PathBuf::from(v)),
                None => return usage_error("--output requires a file"),
            },
            other => return usage_error(&format!("unknown lint option `{other}`")),
        }
    }
    let root = root.unwrap_or_else(default_root);
    let diags = match xtask::lint_root(&root, config.as_deref()) {
        Ok(diags) => diags,
        Err(message) => {
            eprintln!("xtask lint: {message}");
            return ExitCode::from(2);
        }
    };
    // Machine formats always emit a document (empty result set when
    // clean); text only prints findings.
    let rendered = match format {
        Format::Text if diags.is_empty() => String::new(),
        _ => output::render(&diags, format),
    };
    if let Some(path) = &output {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("xtask lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    } else {
        print!("{rendered}");
    }
    if diags.is_empty() {
        eprintln!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        if format != Format::Text || output.is_some() {
            // The findings went to a file or a machine format; keep the
            // human-readable account on stderr.
            for d in &diags {
                eprintln!("{d}\n");
            }
        }
        eprintln!("xtask lint: {} finding(s)", diags.len());
        ExitCode::FAILURE
    }
}

/// Under cargo, the workspace root is the parent of the xtask manifest;
/// otherwise fall back to the invocation directory.
fn default_root() -> PathBuf {
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let manifest = PathBuf::from(dir);
            manifest.parent().map(PathBuf::from).unwrap_or(manifest)
        }
        None => PathBuf::from("."),
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("xtask lint: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Collapses the multi-line rule summaries for single-line display.
fn squash(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

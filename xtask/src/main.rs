//! `cargo xtask` — workspace build tooling. See `cargo xtask help`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
cargo xtask <task>

Tasks:
  lint    run the determinism & soundness static-analysis pass

lint options:
  --root <DIR>      workspace root to scan (default: parent of the xtask
                    manifest under cargo, else the current directory)
  --config <FILE>   lint.toml to use (default: <root>/lint.toml if present)
  --list-rules      print the rule table and exit

Exit codes: 0 clean, 1 findings, 2 usage or configuration error.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown task `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in xtask::rules::RULES {
                    println!("{:<24} {}", rule.name, squash(rule.summary));
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match iter.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root requires a directory"),
            },
            "--config" => match iter.next() {
                Some(v) => config = Some(PathBuf::from(v)),
                None => return usage_error("--config requires a file"),
            },
            other => return usage_error(&format!("unknown lint option `{other}`")),
        }
    }
    let root = root.unwrap_or_else(default_root);
    match xtask::lint_root(&root, config.as_deref()) {
        Ok(diags) if diags.is_empty() => {
            println!("xtask lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                eprintln!("{d}\n");
            }
            eprintln!("xtask lint: {} finding(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(message) => {
            eprintln!("xtask lint: {message}");
            ExitCode::from(2)
        }
    }
}

/// Under cargo, the workspace root is the parent of the xtask manifest;
/// otherwise fall back to the invocation directory.
fn default_root() -> PathBuf {
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let manifest = PathBuf::from(dir);
            manifest.parent().map(PathBuf::from).unwrap_or(manifest)
        }
        None => PathBuf::from("."),
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("xtask lint: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Collapses the multi-line rule summaries for single-line display.
fn squash(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

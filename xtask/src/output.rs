//! Finding serialization: human text, line-oriented JSON, and SARIF 2.1.0.
//!
//! All three formats are emitted by hand — the linter is dependency-free
//! by design (it must build with no registry reachable), so there is no
//! `serde` here, just a small JSON string writer. The SARIF output targets
//! the GitHub code-scanning subset of SARIF 2.1.0: one run, one driver,
//! a populated rule table (so findings link to their rule help), and one
//! result per diagnostic with a physical location.

use std::fmt::Write as _;

use crate::rules::{Diagnostic, RULES};

/// Output format for `cargo xtask lint --format <fmt>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Rustc-style human diagnostics (the default).
    #[default]
    Text,
    /// One JSON object per finding inside a top-level array.
    Json,
    /// SARIF 2.1.0, for GitHub code scanning upload.
    Sarif,
}

impl Format {
    /// Parses a `--format` argument.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "text" => Ok(Self::Text),
            "json" => Ok(Self::Json),
            "sarif" => Ok(Self::Sarif),
            other => Err(format!(
                "unknown format `{other}` (expected text, json, or sarif)"
            )),
        }
    }
}

/// Renders `diags` in `format`. The returned string ends with a newline
/// unless empty.
#[must_use]
pub fn render(diags: &[Diagnostic], format: Format) -> String {
    match format {
        Format::Text => render_text(diags),
        Format::Json => render_json(diags),
        Format::Sarif => render_sarif(diags),
    }
}

fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for diag in diags {
        let _ = writeln!(out, "{diag}");
        out.push('\n');
    }
    out
}

/// Escapes `s` into a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
            json_string(d.rule),
            json_string(&d.path.to_string_lossy().replace('\\', "/")),
            d.line,
            json_string(&d.message),
            json_string(&d.snippet),
        );
        out.push_str(if i + 1 < diags.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

fn render_sarif(diags: &[Diagnostic]) -> String {
    let mut rules = String::new();
    for (i, rule) in RULES.iter().enumerate() {
        let _ = write!(
            rules,
            "          {{\n            \"id\": {},\n            \"shortDescription\": {{\"text\": {}}},\n            \"defaultConfiguration\": {{\"level\": \"error\"}}\n          }}{}",
            json_string(rule.name),
            json_string(rule.summary),
            if i + 1 < RULES.len() { ",\n" } else { "\n" }
        );
    }
    let mut results = String::new();
    for (i, d) in diags.iter().enumerate() {
        let rule_index = RULES
            .iter()
            .position(|r| r.name == d.rule)
            .unwrap_or_default();
        let _ = write!(
            results,
            "        {{\n          \"ruleId\": {},\n          \"ruleIndex\": {},\n          \"level\": \"error\",\n          \"message\": {{\"text\": {}}},\n          \"locations\": [\n            {{\n              \"physicalLocation\": {{\n                \"artifactLocation\": {{\"uri\": {}, \"uriBaseId\": \"%SRCROOT%\"}},\n                \"region\": {{\"startLine\": {}, \"snippet\": {{\"text\": {}}}}}\n              }}\n            }}\n          ]\n        }}{}",
            json_string(d.rule),
            rule_index,
            json_string(&d.message),
            json_string(&d.path.to_string_lossy().replace('\\', "/")),
            d.line,
            json_string(&d.snippet),
            if i + 1 < diags.len() { ",\n" } else { "\n" }
        );
    }
    format!(
        "{{\n  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {{\n      \"tool\": {{\n        \"driver\": {{\n          \"name\": \"glmia-xtask-lint\",\n          \"informationUri\": \"https://github.com/glmia/glmia\",\n          \"rules\": [\n{rules}          ]\n        }}\n      }},\n      \"results\": [\n{results}      ]\n    }}\n  ]\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                rule: "no-wall-clock",
                path: PathBuf::from("crates/core/src/runner.rs"),
                line: 12,
                message: "wall clock \"quoted\" and\nnewline".to_string(),
                snippet: "let t = Instant::now();".to_string(),
            },
            Diagnostic {
                rule: "no-unseeded-rng",
                path: PathBuf::from("crates/dist/src/sampler.rs"),
                line: 3,
                message: "entropy".to_string(),
                snippet: "thread_rng()".to_string(),
            },
        ]
    }

    #[test]
    fn format_parses_and_rejects() {
        assert_eq!(Format::parse("text").unwrap(), Format::Text);
        assert_eq!(Format::parse("json").unwrap(), Format::Json);
        assert_eq!(Format::parse("sarif").unwrap(), Format::Sarif);
        assert!(Format::parse("xml").is_err());
    }

    #[test]
    fn json_escapes_control_and_quote_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_output_parses_back() {
        let text = render(&sample(), Format::Json);
        let value = crate::json::parse(&text).expect("emitted JSON parses");
        let items = value.as_array().expect("top level is an array");
        assert_eq!(items.len(), 2);
        assert_eq!(
            items[0].get("rule").and_then(|v| v.as_str()),
            Some("no-wall-clock")
        );
        assert_eq!(items[0].get("line").and_then(|v| v.as_f64()), Some(12.0));
        assert_eq!(
            items[0].get("message").and_then(|v| v.as_str()),
            Some("wall clock \"quoted\" and\nnewline")
        );
    }

    #[test]
    fn empty_json_is_an_empty_array() {
        let value = crate::json::parse(&render(&[], Format::Json)).unwrap();
        assert_eq!(value.as_array().map(Vec::len), Some(0));
    }

    #[test]
    fn sarif_declares_version_and_schema() {
        let value = crate::json::parse(&render(&sample(), Format::Sarif)).unwrap();
        assert_eq!(value.get("version").and_then(|v| v.as_str()), Some("2.1.0"));
        assert!(value
            .get("$schema")
            .and_then(|v| v.as_str())
            .is_some_and(|s| s.contains("sarif-schema-2.1.0")));
    }

    #[test]
    fn sarif_rule_table_covers_every_rule_and_indexes_match() {
        let value = crate::json::parse(&render(&sample(), Format::Sarif)).unwrap();
        let runs = value.get("runs").and_then(|v| v.as_array()).unwrap();
        let driver = runs[0].get("tool").unwrap().get("driver").unwrap();
        let rules = driver.get("rules").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rules.len(), RULES.len());
        for (i, rule) in RULES.iter().enumerate() {
            assert_eq!(rules[i].get("id").and_then(|v| v.as_str()), Some(rule.name));
        }
        let results = runs[0].get("results").and_then(|v| v.as_array()).unwrap();
        assert_eq!(results.len(), 2);
        for result in results {
            let id = result.get("ruleId").and_then(|v| v.as_str()).unwrap();
            let idx = result.get("ruleIndex").and_then(|v| v.as_f64()).unwrap() as usize;
            assert_eq!(rules[idx].get("id").and_then(|v| v.as_str()), Some(id));
        }
    }

    #[test]
    fn sarif_locations_carry_path_and_line() {
        let value = crate::json::parse(&render(&sample(), Format::Sarif)).unwrap();
        let result = &value.get("runs").unwrap().as_array().unwrap()[0]
            .get("results")
            .unwrap()
            .as_array()
            .unwrap()[0];
        let loc = &result.get("locations").unwrap().as_array().unwrap()[0];
        let phys = loc.get("physicalLocation").unwrap();
        assert_eq!(
            phys.get("artifactLocation")
                .unwrap()
                .get("uri")
                .and_then(|v| v.as_str()),
            Some("crates/core/src/runner.rs")
        );
        assert_eq!(
            phys.get("region")
                .unwrap()
                .get("startLine")
                .and_then(|v| v.as_f64()),
            Some(12.0)
        );
    }

    #[test]
    fn text_output_is_rustc_style() {
        let text = render(&sample(), Format::Text);
        assert!(text.starts_with("error[no-wall-clock]"));
        assert!(text.contains("crates/core/src/runner.rs:12"));
    }
}

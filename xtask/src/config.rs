//! `lint.toml` — the per-rule allowlist configuration.
//!
//! The linter is dependency-free, so it reads a deliberately small TOML
//! subset: `[section]` headers and `key = ["string", ...]` arrays, where
//! arrays may span multiple lines (trailing commas and `#` comments
//! tolerated, inside the array too). Anything else is a configuration
//! error with a line number, so typos fail loudly instead of silently
//! relaxing a rule.
//!
//! Each entry remembers the line its key appeared on: the
//! `unused-lint-allow` rule reports stale allowlist entries (files that no
//! longer exist in the scanned tree) *at their line in `lint.toml`*.

use std::collections::BTreeMap;
use std::fmt;

/// One `key = [...]` entry: its values plus the 1-based line of the key.
#[derive(Debug, Clone, Default)]
struct Entry {
    values: Vec<String>,
    line: usize,
}

/// Parsed `lint.toml`: section → key → list of strings.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    sections: BTreeMap<String, BTreeMap<String, Entry>>,
}

/// A configuration parse failure (line-numbered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl LintConfig {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut sections: BTreeMap<String, BTreeMap<String, Entry>> = BTreeMap::new();
        let mut current: Option<String> = None;
        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                let name = name.trim();
                if name.is_empty() {
                    return Err(ConfigError {
                        line: line_no,
                        message: "empty section name".to_string(),
                    });
                }
                sections.entry(name.to_string()).or_default();
                current = Some(name.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("expected `key = [..]` or `[section]`, got `{line}`"),
                });
            };
            let Some(section) = current.clone() else {
                return Err(ConfigError {
                    line: line_no,
                    message: "key outside any [section]".to_string(),
                });
            };
            // Accumulate continuation lines until the array's brackets
            // balance — multi-line arrays are first-class.
            let mut buf = value.trim().to_string();
            if !buf.starts_with('[') {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("expected a `[\"...\"]` string array, got `{buf}`"),
                });
            }
            while !array_is_closed(&buf) {
                let Some((_, next_raw)) = lines.next() else {
                    return Err(ConfigError {
                        line: line_no,
                        message: format!("unterminated array for key `{}`", key.trim()),
                    });
                };
                buf.push(' ');
                buf.push_str(strip_comment(next_raw).trim());
            }
            let values = parse_string_array(&buf).map_err(|message| ConfigError {
                line: line_no,
                message,
            })?;
            sections.entry(section).or_default().insert(
                key.trim().to_string(),
                Entry {
                    values,
                    line: line_no,
                },
            );
        }
        Ok(Self { sections })
    }

    /// The string list at `[section] key`, empty when absent.
    #[must_use]
    pub fn list(&self, section: &str, key: &str) -> &[String] {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .map_or(&[], |e| e.values.as_slice())
    }

    /// Whether `[section]` exists at all.
    #[must_use]
    pub fn has_section(&self, section: &str) -> bool {
        self.sections.contains_key(section)
    }

    /// The 1-based `lint.toml` line of `[section] key`, when present.
    #[must_use]
    pub fn entry_line(&self, section: &str, key: &str) -> Option<usize> {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .map(|e| e.line)
    }

    /// Every `(section, key, values, line)` entry, in sorted order.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str, &[String], usize)> {
        self.sections.iter().flat_map(|(section, keys)| {
            keys.iter().map(move |(key, entry)| {
                (
                    section.as_str(),
                    key.as_str(),
                    entry.values.as_slice(),
                    entry.line,
                )
            })
        })
    }
}

/// Drops a `#` comment, respecting `"…"` strings (a `#` inside quotes is
/// content, not a comment).
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_string = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_string = !in_string,
            b'#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Whether `buf` (comment-stripped) closes the `[` array it opens.
fn array_is_closed(buf: &str) -> bool {
    let mut depth = 0i32;
    let mut in_string = false;
    for b in buf.bytes() {
        match b {
            b'"' => in_string = !in_string,
            b'[' if !in_string => depth += 1,
            b']' if !in_string => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

/// Parses `["a", "b"]` (trailing comma tolerated; input already collapsed
/// onto one line and comment-stripped).
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| format!("expected a `[\"...\"]` string array, got `{value}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        let unquoted = item
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .ok_or_else(|| format!("array items must be double-quoted strings, got `{item}`"))?;
        out.push(unquoted.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_comments() {
        let cfg = LintConfig::parse(
            "# top comment\n[no-wall-clock]\nallow-files = [\"a.rs\", \"b.rs\",]\n\n[other]\ncrates = []\n",
        )
        .unwrap();
        assert_eq!(cfg.list("no-wall-clock", "allow-files"), ["a.rs", "b.rs"]);
        assert!(cfg.has_section("other"));
        assert!(cfg.list("other", "crates").is_empty());
        assert!(cfg.list("missing", "missing").is_empty());
        assert_eq!(cfg.entry_line("no-wall-clock", "allow-files"), Some(3));
    }

    #[test]
    fn parses_multi_line_arrays() {
        let cfg = LintConfig::parse(
            "[no-panic-in-library]\ncrates = [\n    \"core\",  # the runner\n    \"gossip\",\n    \"trace\",\n]\n",
        )
        .unwrap();
        assert_eq!(
            cfg.list("no-panic-in-library", "crates"),
            ["core", "gossip", "trace"]
        );
        assert_eq!(cfg.entry_line("no-panic-in-library", "crates"), Some(2));
    }

    #[test]
    fn hash_inside_quoted_item_is_not_a_comment() {
        let cfg = LintConfig::parse("[s]\nfiles = [\n  \"a#b.rs\",\n]\n").unwrap();
        assert_eq!(cfg.list("s", "files"), ["a#b.rs"]);
    }

    #[test]
    fn unterminated_array_fails_with_the_key_line() {
        let err = LintConfig::parse("[s]\nfiles = [\n  \"a.rs\",\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn rejects_bare_keys_and_unquoted_items() {
        let err = LintConfig::parse("allow = [\"a\"]\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = LintConfig::parse("[s]\nallow = [a]\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = LintConfig::parse("[s]\nallow = yes\n").unwrap_err();
        assert!(err.message.contains("string array"));
    }

    #[test]
    fn entries_iterate_in_sorted_order_with_lines() {
        let cfg = LintConfig::parse("[b]\nk = [\"1\"]\n[a]\nj = [\"2\"]\n").unwrap();
        let got: Vec<(String, String, usize)> = cfg
            .entries()
            .map(|(s, k, _, l)| (s.to_string(), k.to_string(), l))
            .collect();
        assert_eq!(
            got,
            vec![("a".into(), "j".into(), 4), ("b".into(), "k".into(), 2)]
        );
    }
}

//! `lint.toml` — the per-rule allowlist configuration.
//!
//! The linter is dependency-free, so it reads a deliberately small TOML
//! subset: `[section]` headers and `key = ["string", ...]` arrays (plus
//! `#` comments and blank lines). Anything else is a configuration error
//! with a line number, so typos fail loudly instead of silently relaxing
//! a rule.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed `lint.toml`: section → key → list of strings.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    sections: BTreeMap<String, BTreeMap<String, Vec<String>>>,
}

/// A configuration parse failure (line-numbered).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl LintConfig {
    /// Parses the TOML subset described in the module docs.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut sections: BTreeMap<String, BTreeMap<String, Vec<String>>> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
                let name = name.trim();
                if name.is_empty() {
                    return Err(ConfigError {
                        line: line_no,
                        message: "empty section name".to_string(),
                    });
                }
                sections.entry(name.to_string()).or_default();
                current = Some(name.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("expected `key = [..]` or `[section]`, got `{line}`"),
                });
            };
            let Some(section) = current.clone() else {
                return Err(ConfigError {
                    line: line_no,
                    message: "key outside any [section]".to_string(),
                });
            };
            let values = parse_string_array(value.trim()).map_err(|message| ConfigError {
                line: line_no,
                message,
            })?;
            sections
                .entry(section)
                .or_default()
                .insert(key.trim().to_string(), values);
        }
        Ok(Self { sections })
    }

    /// The string list at `[section] key`, empty when absent.
    pub fn list(&self, section: &str, key: &str) -> &[String] {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .map_or(&[], Vec::as_slice)
    }

    /// Whether `[section]` exists at all.
    pub fn has_section(&self, section: &str) -> bool {
        self.sections.contains_key(section)
    }
}

/// Parses `["a", "b"]` (trailing comma tolerated, single line).
fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| format!("expected a `[\"...\"]` string array, got `{value}`"))?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue; // trailing comma
        }
        let unquoted = item
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .ok_or_else(|| format!("array items must be double-quoted strings, got `{item}`"))?;
        out.push(unquoted.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_comments() {
        let cfg = LintConfig::parse(
            "# top comment\n[no-wall-clock]\nallow-files = [\"a.rs\", \"b.rs\",]\n\n[other]\ncrates = []\n",
        )
        .unwrap();
        assert_eq!(cfg.list("no-wall-clock", "allow-files"), ["a.rs", "b.rs"]);
        assert!(cfg.has_section("other"));
        assert!(cfg.list("other", "crates").is_empty());
        assert!(cfg.list("missing", "missing").is_empty());
    }

    #[test]
    fn rejects_bare_keys_and_unquoted_items() {
        let err = LintConfig::parse("allow = [\"a\"]\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = LintConfig::parse("[s]\nallow = [a]\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = LintConfig::parse("[s]\nallow = yes\n").unwrap_err();
        assert!(err.message.contains("string array"));
    }
}

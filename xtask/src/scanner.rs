//! Per-file preprocessing for the lint rules, built on the token lexer.
//!
//! Every file is lexed into a full token stream ([`crate::lexer`]); rules
//! match tokens, so a `thread_rng` inside a doc example, a string, or a
//! char literal can never trip a rule. A masked view (comments/literals
//! blanked byte-for-byte) is still derived from the tokens for the two
//! analyses that want flat text: statement-span heuristics and
//! `#[cfg(test)]` bracket matching.
//!
//! The scanner also extracts `// lint:allow(rule, "reason")` escape
//! hatches from comment tokens. Allows are *candidates* here; whether each
//! one actually suppresses a finding is decided by the suppression pass in
//! [`crate::rules`], which is what powers the `unused-lint-allow` rule.

use std::path::PathBuf;

use crate::lexer::{self, Token, TokenKind};

/// Where a file sits in the workspace; rules scope themselves by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<name>/src/**` — library or binary source.
    Src,
    /// `crates/<name>/tests/**` or the workspace-level `tests/` dir.
    Tests,
    /// `crates/<name>/benches/**`.
    Benches,
    /// The workspace-level `examples/` dir.
    Examples,
}

/// A `// lint:allow(rule, "reason")` escape hatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The rule being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Whether the comment is alone on its line (then it covers the next
    /// line instead of its own).
    pub standalone: bool,
}

impl Allow {
    /// The 1-based line this allow covers: its own line for the trailing
    /// form, the next line for the standalone form.
    #[must_use]
    pub fn covered_line(&self) -> usize {
        if self.standalone {
            self.line + 1
        } else {
            self.line
        }
    }
}

/// A malformed escape hatch, reported as a diagnostic in its own right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadAllow {
    /// 1-based line of the malformed comment.
    pub line: usize,
    /// What is wrong with it.
    pub problem: String,
}

/// One preprocessed source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Workspace-relative path (`/`-separated).
    pub path: PathBuf,
    /// The crate directory name under `crates/`, when applicable.
    pub crate_name: Option<String>,
    /// Which tree the file belongs to.
    pub kind: FileKind,
    /// Original source text.
    pub source: String,
    /// The complete token stream (comments included).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-comment) tokens, in
    /// order — the stream rules do adjacency queries on.
    pub sig: Vec<usize>,
    /// Source with comments and string/char literals blanked to spaces.
    pub masked: String,
    /// Parsed escape hatches.
    pub allows: Vec<Allow>,
    /// Malformed escape hatches.
    pub bad_allows: Vec<BadAllow>,
    /// Inclusive 1-based line spans of `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
}

impl ScannedFile {
    /// Preprocesses `source` as the file at `path`.
    #[must_use]
    pub fn new(path: PathBuf, crate_name: Option<String>, kind: FileKind, source: String) -> Self {
        let tokens = lexer::lex(&source);
        let sig = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.kind.is_comment())
            .map(|(i, _)| i)
            .collect();
        let masked = lexer::mask(&source, &tokens);
        let (allows, bad_allows) = parse_allows(&source, &tokens);
        let test_spans = find_test_spans(&masked);
        Self {
            path,
            crate_name,
            kind,
            source,
            tokens,
            sig,
            masked,
            allows,
            bad_allows,
            test_spans,
        }
    }

    /// The 1-based line containing byte `offset`.
    #[must_use]
    pub fn line_of(&self, offset: usize) -> usize {
        1 + self.source[..offset.min(self.source.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
    }

    /// The trimmed text of 1-based `line`.
    #[must_use]
    pub fn line_text(&self, line: usize) -> &str {
        self.source
            .lines()
            .nth(line.saturating_sub(1))
            .unwrap_or("")
            .trim()
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test_span(&self, line: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| start <= line && line <= end)
    }

    /// The index into `allows` of an escape hatch covering a finding of
    /// `rule` on `line`, if any.
    #[must_use]
    pub fn matching_allow(&self, rule: &str, line: usize) -> Option<usize> {
        self.allows
            .iter()
            .position(|a| a.rule == rule && a.covered_line() == line)
    }

    // ---- token-stream queries -------------------------------------------

    /// The significant token at stream position `i` (comments skipped).
    #[must_use]
    pub fn sig_token(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&idx| &self.tokens[idx])
    }

    /// The text of the significant token at stream position `i`.
    #[must_use]
    pub fn sig_text(&self, i: usize) -> &str {
        self.sig_token(i).map_or("", |t| t.text(&self.source))
    }

    /// Stream positions (indices into `sig`) of identifier tokens whose
    /// text is `name`.
    #[must_use]
    pub fn idents(&self, name: &str) -> Vec<usize> {
        (0..self.sig.len())
            .filter(|&i| {
                let t = &self.tokens[self.sig[i]];
                t.kind == TokenKind::Ident && t.text(&self.source) == name
            })
            .collect()
    }

    /// Whether the significant tokens starting at stream position `i`
    /// spell `texts` exactly (any kind; compares token text).
    #[must_use]
    pub fn sig_matches(&self, i: usize, texts: &[&str]) -> bool {
        texts
            .iter()
            .enumerate()
            .all(|(k, want)| self.sig_text(i + k) == *want)
    }

    /// Stream positions of `a::b` path patterns, returned at the position
    /// of `a` (e.g. `paths("Instant", "now")` finds `Instant::now`).
    #[must_use]
    pub fn paths(&self, a: &str, b: &str) -> Vec<usize> {
        self.idents(a)
            .into_iter()
            .filter(|&i| self.sig_matches(i + 1, &[":", ":"]) && self.sig_text(i + 3) == b)
            .collect()
    }

    /// Stream positions of `.name` method-call patterns (position of the
    /// method identifier).
    #[must_use]
    pub fn method_calls(&self, name: &str) -> Vec<usize> {
        self.idents(name)
            .into_iter()
            .filter(|&i| i > 0 && self.sig_text(i - 1) == ".")
            .collect()
    }

    /// Stream positions of `name!` macro-invocation patterns.
    #[must_use]
    pub fn macro_calls(&self, name: &str) -> Vec<usize> {
        self.idents(name)
            .into_iter()
            .filter(|&i| self.sig_text(i + 1) == "!")
            .collect()
    }

    /// Whether the identifier at stream position `i` is the final segment
    /// of a `Prefix::` path (e.g. `Ordering::Relaxed`).
    #[must_use]
    pub fn path_prefixed_by(&self, i: usize, prefix: &str) -> bool {
        i >= 3 && self.sig_matches(i - 2, &[":", ":"]) && self.sig_text(i - 3) == prefix
    }

    /// The 1-based line of the significant token at stream position `i`.
    #[must_use]
    pub fn sig_line(&self, i: usize) -> usize {
        self.sig_token(i).map_or(1, |t| t.line)
    }
}

/// Extracts well-formed and malformed `lint:allow` hatches from line
/// comment tokens. A comment is *trailing* when any significant token
/// starts on the same line before it; otherwise it is standalone and
/// covers the next line.
fn parse_allows(source: &str, tokens: &[Token]) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (idx, token) in tokens.iter().enumerate() {
        if !matches!(token.kind, TokenKind::LineComment { .. }) {
            continue;
        }
        let text = &token.text(source)[2..]; // past the `//`
                                             // The marker is `lint:allow(` with the paren attached, so prose
                                             // *mentioning* lint:allow (docs, this comment) is not a hatch.
        let Some(start) = text.find("lint:allow(") else {
            continue;
        };
        let rest = &text[start + "lint:allow(".len()..];
        let Some(inner) = rest.rfind(')').map(|end| &rest[..end]) else {
            bad.push(BadAllow {
                line: token.line,
                problem: "expected `lint:allow(<rule>, \"<reason>\")`".to_string(),
            });
            continue;
        };
        let (rule, reason) = match inner.split_once(',') {
            Some((rule, reason)) => (rule.trim(), reason.trim()),
            None => (inner.trim(), ""),
        };
        let reason = reason.trim_matches('"').trim();
        if rule.is_empty() || reason.is_empty() {
            bad.push(BadAllow {
                line: token.line,
                problem: format!(
                    "lint:allow({}) needs a non-empty rule and justification, \
                     e.g. lint:allow(no-wall-clock, \"observability timing\")",
                    inner.trim()
                ),
            });
            continue;
        }
        let trailing = tokens[..idx]
            .iter()
            .rev()
            .take_while(|t| t.line == token.line)
            .any(|t| !t.kind.is_comment());
        allows.push(Allow {
            line: token.line,
            rule: rule.to_string(),
            reason: reason.to_string(),
            standalone: !trailing,
        });
    }
    (allows, bad)
}

/// Inclusive 1-based line spans of `#[cfg(test)]` items in masked text.
fn find_test_spans(masked: &str) -> Vec<(usize, usize)> {
    const NEEDLE: &str = "#[cfg(test)]";
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    let mut from = 0usize;
    while let Some(found) = masked[from..].find(NEEDLE) {
        let attr_at = from + found;
        let start_line = 1 + masked[..attr_at].bytes().filter(|&b| b == b'\n').count();
        // The attribute's item body is the next balanced `{ ... }` block;
        // stop early at `;` (e.g. `#[cfg(test)] use ...;` has no body).
        let mut j = attr_at + NEEDLE.len();
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let end = if let Some(open_at) = open {
            let mut depth = 0usize;
            let mut k = open_at;
            loop {
                if k >= bytes.len() {
                    break k;
                }
                match bytes[k] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break k + 1;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        } else {
            j
        };
        let end_line = 1 + masked[..end.min(masked.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count();
        spans.push((start_line, end_line));
        from = end.max(attr_at + NEEDLE.len());
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new(
            PathBuf::from("crates/demo/src/lib.rs"),
            Some("demo".to_string()),
            FileKind::Src,
            src.to_string(),
        )
    }

    #[test]
    fn masks_line_and_doc_comments() {
        let f = scan("let x = 1; // thread_rng here\n/// Instant::now()\nfn f() {}\n");
        assert!(!f.masked.contains("thread_rng"));
        assert!(!f.masked.contains("Instant::now"));
        assert!(f.masked.contains("fn f"));
        assert_eq!(f.masked.len(), f.source.len());
        assert!(f.idents("thread_rng").is_empty());
        assert_eq!(f.idents("f").len(), 1);
    }

    #[test]
    fn masks_nested_block_comments() {
        let f = scan("/* outer /* HashMap */ still comment */ fn g() {}\n");
        assert!(!f.masked.contains("HashMap"));
        assert!(f.masked.contains("fn g"));
        assert!(f.idents("HashMap").is_empty());
    }

    #[test]
    fn masks_strings_and_raw_strings() {
        let f = scan(
            "let a = \"thread_rng\"; let b = r#\"SystemTime::now \"quoted\"\"#; let c = HashMap::new();\n",
        );
        assert!(!f.masked.contains("thread_rng"));
        assert!(!f.masked.contains("SystemTime"));
        assert!(f.masked.contains("HashMap"));
        assert_eq!(f.idents("HashMap").len(), 1);
        assert!(f.paths("SystemTime", "now").is_empty());
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let f = scan("let s = \"a\\\"b thread_rng\"; let t = unwrap;\n");
        assert!(!f.masked.contains("thread_rng"));
        assert!(f.masked.contains("unwrap"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let f = scan("fn f<'a>(x: &'a str) -> char { let c = '\\''; let d = 'x'; d }\n");
        assert!(f.masked.contains("<'a>"));
        assert!(f.masked.contains("&'a str"));
        assert!(!f.masked.contains("'x'"));
    }

    #[test]
    fn newlines_survive_masking_so_lines_align() {
        let f = scan("let a = \"line\nline\"; /* c\nc */ fn h() {}\n");
        assert_eq!(
            f.source.matches('\n').count(),
            f.masked.matches('\n').count()
        );
        let h = f.idents("h")[0];
        assert_eq!(f.sig_line(h), 3);
    }

    #[test]
    fn token_queries_find_paths_methods_and_macros() {
        let f = scan(
            "fn f() {\n    let t = Instant::now();\n    let v = xs.first().unwrap();\n    panic!(\"boom\");\n}\n",
        );
        assert_eq!(f.paths("Instant", "now").len(), 1);
        assert_eq!(f.sig_line(f.paths("Instant", "now")[0]), 2);
        assert_eq!(f.method_calls("unwrap").len(), 1);
        assert_eq!(f.macro_calls("panic").len(), 1);
        // `first` is a method call too; `fn` is not.
        assert_eq!(f.method_calls("first").len(), 1);
        assert!(f.method_calls("fn").is_empty());
    }

    #[test]
    fn path_prefix_queries() {
        let f = scan(
            "use std::sync::atomic::Ordering;\nfn f() { o(Ordering::Relaxed); g(Relaxed); }\n",
        );
        let relaxed = f.idents("Relaxed");
        assert_eq!(relaxed.len(), 2);
        assert!(f.path_prefixed_by(relaxed[0], "Ordering"));
        assert!(!f.path_prefixed_by(relaxed[1], "Ordering"));
    }

    #[test]
    fn parses_trailing_and_standalone_allows() {
        let f = scan(
            "// lint:allow(no-wall-clock, \"timing the run\")\nlet t = 1;\nlet u = 2; // lint:allow(no-unseeded-rng, \"fixture\")\n",
        );
        assert_eq!(f.allows.len(), 2);
        assert!(f.allows[0].standalone);
        assert_eq!(f.allows[0].rule, "no-wall-clock");
        assert_eq!(f.allows[0].reason, "timing the run");
        assert_eq!(f.allows[0].covered_line(), 2);
        assert!(!f.allows[1].standalone);
        assert_eq!(f.allows[1].covered_line(), 3);
        assert!(f.matching_allow("no-wall-clock", 2).is_some());
        assert!(f.matching_allow("no-unseeded-rng", 3).is_some());
        assert!(f.matching_allow("no-wall-clock", 3).is_none());
    }

    #[test]
    fn allow_after_a_comment_on_its_own_line_is_still_standalone() {
        let f = scan("// context\n// lint:allow(no-wall-clock, \"why\")\nlet t = 1;\n");
        assert_eq!(f.allows.len(), 1);
        assert!(f.allows[0].standalone);
        assert_eq!(f.allows[0].covered_line(), 3);
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let f = scan("let x = 1; // lint:allow(no-wall-clock)\n");
        assert!(f.allows.is_empty());
        assert_eq!(f.bad_allows.len(), 1);
        assert_eq!(f.bad_allows[0].line, 1);
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { panic!(\"x\") }\n}\nfn after() {}\n";
        let f = scan(src);
        assert_eq!(f.test_spans, vec![(2, 6)]);
        assert!(f.in_test_span(5));
        assert!(!f.in_test_span(1));
        assert!(!f.in_test_span(7));
    }
}

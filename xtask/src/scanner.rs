//! Lexical preprocessing of Rust sources for the lint rules.
//!
//! Rules match tokens on a *masked* copy of each file: comments and
//! string/char literals are blanked out (byte-for-byte, newlines kept), so
//! a `thread_rng` inside a doc example or an error message never trips a
//! rule. The scanner also extracts the `// lint:allow(rule, "reason")`
//! escape hatches and the line spans of `#[cfg(test)]` blocks, which the
//! no-panic rule exempts.

use std::path::PathBuf;

/// Where a file sits in the workspace; rules scope themselves by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<name>/src/**` — library or binary source.
    Src,
    /// `crates/<name>/tests/**` or the workspace-level `tests/` dir.
    Tests,
    /// `crates/<name>/benches/**`.
    Benches,
    /// The workspace-level `examples/` dir.
    Examples,
}

/// A `// lint:allow(rule, "reason")` escape hatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// The rule being allowed.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// Whether the comment is alone on its line (then it covers the next
    /// line instead of its own).
    pub standalone: bool,
}

/// A malformed escape hatch, reported as a diagnostic in its own right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadAllow {
    /// 1-based line of the malformed comment.
    pub line: usize,
    /// What is wrong with it.
    pub problem: String,
}

/// One preprocessed source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Workspace-relative path (`/`-separated).
    pub path: PathBuf,
    /// The crate directory name under `crates/`, when applicable.
    pub crate_name: Option<String>,
    /// Which tree the file belongs to.
    pub kind: FileKind,
    /// Original source text.
    pub source: String,
    /// Source with comments and string/char literals blanked to spaces.
    pub masked: String,
    /// Parsed escape hatches.
    pub allows: Vec<Allow>,
    /// Malformed escape hatches.
    pub bad_allows: Vec<BadAllow>,
    /// Inclusive 1-based line spans of `#[cfg(test)]` items.
    pub test_spans: Vec<(usize, usize)>,
}

impl ScannedFile {
    /// Preprocesses `source` as the file at `path`.
    pub fn new(path: PathBuf, crate_name: Option<String>, kind: FileKind, source: String) -> Self {
        let (masked, comments) = mask(&source);
        let (allows, bad_allows) = parse_allows(&comments);
        let test_spans = find_test_spans(&masked);
        Self {
            path,
            crate_name,
            kind,
            source,
            masked,
            allows,
            bad_allows,
            test_spans,
        }
    }

    /// The 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        1 + self.source[..offset.min(self.source.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count()
    }

    /// The trimmed text of 1-based `line`.
    pub fn line_text(&self, line: usize) -> &str {
        self.source
            .lines()
            .nth(line.saturating_sub(1))
            .unwrap_or("")
            .trim()
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_span(&self, line: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| start <= line && line <= end)
    }

    /// Whether a finding of `rule` on `line` is covered by an escape
    /// hatch: a trailing allow on the same line, or a standalone allow on
    /// the line directly above.
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule
                && ((a.line == line && !a.standalone) || (a.standalone && a.line + 1 == line))
        })
    }
}

/// A line comment captured during masking.
#[derive(Debug, Clone)]
struct Comment {
    /// 1-based line of the `//`.
    line: usize,
    /// Text after the `//`, up to the newline.
    text: String,
    /// Whether anything other than whitespace precedes the `//` on its line.
    trailing: bool,
}

/// Blanks comments and string/char literals, preserving byte offsets and
/// newlines, and collects line comments for allow parsing.
fn mask(source: &str) -> (String, Vec<Comment>) {
    let bytes = source.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut line = 1usize;
    let mut line_has_code = false;
    let mut i = 0usize;

    // Pushes `n` bytes of blank space, preserving any newlines in `src`.
    fn blank(out: &mut Vec<u8>, src: &[u8], line: &mut usize) {
        for &b in src {
            if b == b'\n' {
                out.push(b'\n');
                *line += 1;
            } else {
                out.push(b' ');
            }
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        if b == b'/' && next == Some(b'/') {
            // Line comment (also covers /// and //! doc comments).
            let end = source[i..].find('\n').map_or(bytes.len(), |n| i + n);
            comments.push(Comment {
                line,
                text: source[i + 2..end].to_string(),
                trailing: line_has_code,
            });
            blank(&mut out, &bytes[i..end], &mut line);
            i = end;
        } else if b == b'/' && next == Some(b'*') {
            // Block comment, possibly nested.
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, &bytes[i..j], &mut line);
            i = j;
        } else if b == b'"' {
            let j = skip_string(bytes, i);
            blank(&mut out, &bytes[i..j], &mut line);
            i = j;
        } else if is_raw_string_start(bytes, i) {
            let j = skip_raw_string(bytes, i);
            blank(&mut out, &bytes[i..j], &mut line);
            i = j;
        } else if b == b'b' && next == Some(b'"') {
            let j = skip_string(bytes, i + 1);
            blank(&mut out, &bytes[i..j], &mut line);
            i = j;
        } else if b == b'\'' {
            if let Some(j) = char_literal_end(bytes, i) {
                blank(&mut out, &bytes[i..j], &mut line);
                i = j;
            } else {
                // A lifetime; copy the quote through.
                out.push(b);
                line_has_code = true;
                i += 1;
            }
        } else {
            if b == b'\n' {
                line += 1;
                line_has_code = false;
            } else if !b.is_ascii_whitespace() {
                line_has_code = true;
            }
            out.push(b);
            i += 1;
        }
    }
    // Masking only ever replaces bytes with ASCII spaces or keeps them, so
    // the result is valid UTF-8 iff the input was (and the input is a &str).
    let masked = String::from_utf8(out).unwrap_or_default();
    (masked, comments)
}

/// Byte index one past the closing quote of the plain string starting at
/// `bytes[start] == b'"'`.
fn skip_string(bytes: &[u8], start: usize) -> usize {
    let mut j = start + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Whether `bytes[i..]` starts a raw (or raw-byte) string literal.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let rest = &bytes[i..];
    let rest = match rest {
        [b'b', b'r', ..] => &rest[2..],
        [b'r', ..] => &rest[1..],
        _ => return false,
    };
    // Preceded by an identifier character? Then this `r` is part of a
    // larger identifier like `for` — not a literal prefix.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let hashes = rest.iter().take_while(|&&b| b == b'#').count();
    rest.get(hashes) == Some(&b'"')
}

/// Byte index one past the closing delimiter of the raw string at `i`.
fn skip_raw_string(bytes: &[u8], i: usize) -> usize {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    j += 1; // the `r`
    let hashes = bytes[j..].iter().take_while(|&&b| b == b'#').count();
    j += hashes + 1; // hashes and the opening quote
    while j < bytes.len() {
        if bytes[j] == b'"'
            && bytes[j + 1..].len() >= hashes
            && bytes[j + 1..j + 1 + hashes].iter().all(|&b| b == b'#')
        {
            return j + 1 + hashes;
        }
        j += 1;
    }
    j
}

/// If a char literal starts at `bytes[i] == b'\''`, the index one past its
/// closing quote; `None` when the quote introduces a lifetime instead.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    match bytes.get(i + 1) {
        Some(b'\\') => {
            // Escaped char: scan to the closing quote.
            let mut j = i + 2;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => return Some(j + 1),
                    b'\n' => return None,
                    _ => j += 1,
                }
            }
            None
        }
        Some(&c) if c != b'\'' => {
            // `'x'` is a char literal; `'x` followed by anything else is a
            // lifetime. The scalar after the quote spans 1–4 bytes.
            let scalar_len = match c {
                _ if c < 0x80 => 1,
                _ if c < 0xE0 => 2,
                _ if c < 0xF0 => 3,
                _ => 4,
            };
            let close = i + 1 + scalar_len;
            (bytes.get(close) == Some(&b'\'')).then_some(close + 1)
        }
        _ => None,
    }
}

/// Extracts well-formed and malformed `lint:allow` hatches from comments.
fn parse_allows(comments: &[Comment]) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for comment in comments {
        // The marker is `lint:allow(` with the paren attached, so prose
        // *mentioning* lint:allow (docs, this comment) is not a hatch.
        let Some(start) = comment.text.find("lint:allow(") else {
            continue;
        };
        let rest = &comment.text[start + "lint:allow(".len()..];
        let Some(inner) = rest.rfind(')').map(|end| &rest[..end]) else {
            bad.push(BadAllow {
                line: comment.line,
                problem: "expected `lint:allow(<rule>, \"<reason>\")`".to_string(),
            });
            continue;
        };
        let (rule, reason) = match inner.split_once(',') {
            Some((rule, reason)) => (rule.trim(), reason.trim()),
            None => (inner.trim(), ""),
        };
        let reason = reason.trim_matches('"').trim();
        if rule.is_empty() || reason.is_empty() {
            bad.push(BadAllow {
                line: comment.line,
                problem: format!(
                    "lint:allow({}) needs a non-empty rule and justification, \
                     e.g. lint:allow(no-wall-clock, \"observability timing\")",
                    inner.trim()
                ),
            });
            continue;
        }
        allows.push(Allow {
            line: comment.line,
            rule: rule.to_string(),
            reason: reason.to_string(),
            standalone: !comment.trailing,
        });
    }
    (allows, bad)
}

/// Inclusive 1-based line spans of `#[cfg(test)]` items in masked text.
fn find_test_spans(masked: &str) -> Vec<(usize, usize)> {
    const NEEDLE: &str = "#[cfg(test)]";
    let bytes = masked.as_bytes();
    let mut spans = Vec::new();
    let mut from = 0usize;
    while let Some(found) = masked[from..].find(NEEDLE) {
        let attr_at = from + found;
        let start_line = 1 + masked[..attr_at].bytes().filter(|&b| b == b'\n').count();
        // The attribute's item body is the next balanced `{ ... }` block;
        // stop early at `;` (e.g. `#[cfg(test)] use ...;` has no body).
        let mut j = attr_at + NEEDLE.len();
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let end = if let Some(open_at) = open {
            let mut depth = 0usize;
            let mut k = open_at;
            loop {
                if k >= bytes.len() {
                    break k;
                }
                match bytes[k] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break k + 1;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        } else {
            j
        };
        let end_line = 1 + masked[..end.min(masked.len())]
            .bytes()
            .filter(|&b| b == b'\n')
            .count();
        spans.push((start_line, end_line));
        from = end.max(attr_at + NEEDLE.len());
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new(
            PathBuf::from("crates/demo/src/lib.rs"),
            Some("demo".to_string()),
            FileKind::Src,
            src.to_string(),
        )
    }

    #[test]
    fn masks_line_and_doc_comments() {
        let f = scan("let x = 1; // thread_rng here\n/// Instant::now()\nfn f() {}\n");
        assert!(!f.masked.contains("thread_rng"));
        assert!(!f.masked.contains("Instant::now"));
        assert!(f.masked.contains("fn f"));
        assert_eq!(f.masked.len(), f.source.len());
    }

    #[test]
    fn masks_nested_block_comments() {
        let f = scan("/* outer /* HashMap */ still comment */ fn g() {}\n");
        assert!(!f.masked.contains("HashMap"));
        assert!(f.masked.contains("fn g"));
    }

    #[test]
    fn masks_strings_and_raw_strings() {
        let f = scan(
            "let a = \"thread_rng\"; let b = r#\"SystemTime::now \"quoted\"\"#; let c = HashMap::new();\n",
        );
        assert!(!f.masked.contains("thread_rng"));
        assert!(!f.masked.contains("SystemTime"));
        assert!(f.masked.contains("HashMap"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let f = scan("let s = \"a\\\"b thread_rng\"; let t = unwrap;\n");
        assert!(!f.masked.contains("thread_rng"));
        assert!(f.masked.contains("unwrap"));
    }

    #[test]
    fn char_literals_masked_lifetimes_kept() {
        let f = scan("fn f<'a>(x: &'a str) -> char { let c = '\\''; let d = 'x'; d }\n");
        assert!(f.masked.contains("<'a>"));
        assert!(f.masked.contains("&'a str"));
        assert!(!f.masked.contains("'x'"));
    }

    #[test]
    fn newlines_survive_masking_so_lines_align() {
        let f = scan("let a = \"line\nline\"; /* c\nc */ fn h() {}\n");
        assert_eq!(
            f.source.matches('\n').count(),
            f.masked.matches('\n').count()
        );
        assert_eq!(f.line_of(f.masked.find("fn h").unwrap()), 3);
    }

    #[test]
    fn parses_trailing_and_standalone_allows() {
        let f = scan(
            "// lint:allow(no-wall-clock, \"timing the run\")\nlet t = 1;\nlet u = 2; // lint:allow(no-unseeded-rng, \"fixture\")\n",
        );
        assert_eq!(f.allows.len(), 2);
        assert!(f.allows[0].standalone);
        assert_eq!(f.allows[0].rule, "no-wall-clock");
        assert_eq!(f.allows[0].reason, "timing the run");
        assert!(!f.allows[1].standalone);
        assert!(f.is_allowed("no-wall-clock", 2));
        assert!(f.is_allowed("no-unseeded-rng", 3));
        assert!(!f.is_allowed("no-wall-clock", 3));
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let f = scan("let x = 1; // lint:allow(no-wall-clock)\n");
        assert!(f.allows.is_empty());
        assert_eq!(f.bad_allows.len(), 1);
        assert_eq!(f.bad_allows[0].line, 1);
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { panic!(\"x\") }\n}\nfn after() {}\n";
        let f = scan(src);
        assert_eq!(f.test_spans, vec![(2, 6)]);
        assert!(f.in_test_span(5));
        assert!(!f.in_test_span(1));
        assert!(!f.in_test_span(7));
    }
}

//! Build tooling for the glmia workspace, driven via `cargo xtask <task>`.
//!
//! The only task today is `lint`: a determinism & soundness static-analysis
//! pass enforcing repo-specific rules the stock toolchain cannot express
//! (see DESIGN.md §8). It is deliberately dependency-free — a hand-rolled
//! token-level lexer ([`lexer`]) rather than a `syn` AST walk, and
//! hand-rolled JSON/SARIF emission ([`output`]) rather than `serde` — so
//! it builds and runs even when no crate registry is reachable. Rules
//! match the token stream, so banned names inside strings, chars, or
//! comments can never fire.

#![forbid(unsafe_code)]

pub mod config;
pub mod json;
pub mod lexer;
pub mod output;
pub mod rules;
pub mod scanner;
pub mod walk;

use std::path::Path;

use config::LintConfig;
use rules::Diagnostic;

/// Lints the workspace rooted at `root`, reading `lint.toml` from
/// `config_path` when given (error if missing), else from `root/lint.toml`
/// when present, else built-in defaults.
///
/// Returns the sorted diagnostics; an `Err` is an environment problem
/// (unreadable tree, malformed configuration), not a lint finding.
pub fn lint_root(root: &Path, config_path: Option<&Path>) -> Result<Vec<Diagnostic>, String> {
    let cfg = load_config(root, config_path)?;
    let files = walk::scan_workspace(root)
        .map_err(|e| format!("failed to scan {}: {e}", root.display()))?;
    if files.is_empty() {
        return Err(format!(
            "no Rust sources found under {} — is --root pointing at the workspace?",
            root.display()
        ));
    }
    Ok(rules::lint_files(&files, &cfg))
}

fn load_config(root: &Path, config_path: Option<&Path>) -> Result<LintConfig, String> {
    let path = match config_path {
        Some(p) => p.to_path_buf(),
        None => {
            let default = root.join("lint.toml");
            if !default.is_file() {
                return Ok(LintConfig::default());
            }
            default
        }
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    LintConfig::parse(&text).map_err(|e| e.to_string())
}

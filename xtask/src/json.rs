//! A minimal JSON parser, used by the output tests to prove the
//! hand-emitted JSON and SARIF documents are well-formed and shaped
//! correctly — the linter cannot take `serde_json` (it must build with no
//! registry reachable), so round-trip validation is done against this.
//!
//! Full JSON per RFC 8259 minus two liberties that do not matter for
//! validation: numbers are parsed as `f64`, and `\uXXXX` surrogate pairs
//! are combined but lone surrogates are replaced rather than rejected.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish int from float).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is normalized (sorted) by the map.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The string content, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, when this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member named `key`, when this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }
}

/// Parses `text` as a single JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // High surrogate: combine with the following
                            // `\uXXXX` low surrogate when present.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                0xFFFD
                            }
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("invalid escape \\{}", *other as char)),
                }
            }
            Some(&b) if b < 0x20 => {
                return Err("raw control character in string".to_string());
            }
            Some(_) => {
                // Copy one UTF-8 scalar (1–4 bytes).
                let len = utf8_len(bytes[*pos]);
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| "truncated UTF-8".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8".to_string())?);
                *pos += len;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let chunk = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| "truncated \\u escape".to_string())?;
    *pos += 4;
    std::str::from_utf8(chunk)
        .ok()
        .and_then(|s| u32::from_str_radix(s, 16).ok())
        .ok_or_else(|| "invalid \\u escape".to_string())
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // past `[`
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // past `{`
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".to_string()));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        assert_eq!(
            parse(r#""a\"b\\c\ndé""#).unwrap(),
            Value::String("a\"b\\c\ndé".to_string())
        );
        // Surrogate pair escape for U+1F600, and a raw multi-byte scalar.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("\u{1F600}".to_string())
        );
        assert_eq!(
            parse("\"\u{1F600}\"").unwrap(),
            Value::String("\u{1F600}".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}], "d": null}"#).unwrap();
        let a = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").and_then(Value::as_str), Some("c"));
        assert_eq!(v.get("d"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn rejects_raw_control_characters_in_strings() {
        assert!(parse("\"a\u{1}b\"").is_err());
    }
}

//! The determinism & soundness rules and their matching engine.
//!
//! Each rule scans the token stream of a [`ScannedFile`] (comments and
//! string/char literals are separate token kinds, so they can never trip a
//! rule) for patterns the stock toolchain cannot reject, and reports
//! [`Diagnostic`]s.
//!
//! The engine runs in two passes. Rules first emit *candidates* without
//! looking at escape hatches; a suppression pass then matches each
//! candidate against the file's `// lint:allow(rule, "reason")` comments,
//! dropping the suppressed candidates and recording which allows did the
//! suppressing. An allow that suppressed nothing is itself a finding
//! (`unused-lint-allow`) — the escape-hatch inventory stays honest because
//! a hatch that outlives its hazard cannot linger. Stale `lint.toml`
//! file-allowlist entries are reported under the same rule, at their line
//! in `lint.toml`.

use std::path::PathBuf;

use crate::config::LintConfig;
use crate::scanner::{FileKind, ScannedFile};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        writeln!(f, "  --> {}:{}", self.path.display(), self.line)?;
        write!(f, "   |  {}", self.snippet)
    }
}

/// A rule's registry entry.
pub struct Rule {
    /// Stable kebab-case name (used in `lint:allow` and `lint.toml`).
    pub name: &'static str,
    /// One-line description for `--list-rules` and the SARIF rule table.
    pub summary: &'static str,
}

/// Every rule the pass knows, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-unordered-iteration",
        summary: "determinism-critical crates must not name HashMap/HashSet: \
                  their iteration order is per-process hash order and can \
                  leak into merges, traces and reports",
    },
    Rule {
        name: "no-wall-clock",
        summary: "Instant::now/SystemTime::now only in the timing allowlist: \
                  wall-clock reads in simulation or analysis code break rerun \
                  byte-identity",
    },
    Rule {
        name: "no-unseeded-rng",
        summary: "thread_rng/rand::random/from_entropy/OsRng are banned \
                  everywhere: all randomness derives from the experiment seed",
    },
    Rule {
        name: "no-panic-in-library",
        summary: "library code must not unwrap()/panic!/todo!/unimplemented! \
                  outside #[cfg(test)]; .expect(\"non-empty reason\") is the \
                  sanctioned, self-justifying form",
    },
    Rule {
        name: "float-accumulation-order",
        summary: "float sums/products/folds over a source whose order is not \
                  pinned by a sort or a sorted-row (CSR) invariant are banned: \
                  float addition is not associative, so iteration-order drift \
                  changes the rounded result — sort a projection first",
    },
    Rule {
        name: "schema-version-drift",
        summary: "schema numbers in trace/metrics/cli code must reference the \
                  central SCHEMA_VERSION consts, never integer literals — a \
                  hardcoded version silently diverges when the stream evolves",
    },
    Rule {
        name: "atomic-ordering-audit",
        summary: "Ordering::Relaxed only in the loom-modeled instrument files \
                  (lint.toml relaxed-files); Ordering::SeqCst flagged on hot \
                  paths, where a full fence defeats the lock-free design",
    },
    Rule {
        name: "unused-lint-allow",
        summary: "a lint:allow that suppresses nothing (or a lint.toml \
                  file-allowlist entry naming no scanned file) is dead — \
                  delete it so the escape-hatch inventory stays honest",
    },
    Rule {
        name: "malformed-allow",
        summary: "a lint:allow comment must name a known rule and carry a \
                  non-empty justification",
    },
];

/// Default determinism-critical crates for `no-unordered-iteration`.
const DEFAULT_RESTRICTED: &[&str] = &["core", "gossip", "metrics", "trace"];

/// Default wall-clock allowlist: the telemetry clock shim is the one
/// sanctioned `Instant::now` site — phase timers, the progress heartbeat
/// and run manifests all read time through `glmia_telemetry::clock`.
const DEFAULT_CLOCK_FILES: &[&str] = &["crates/telemetry/src/clock.rs"];

/// Default crates whose schema numbers must come from the central consts.
const DEFAULT_SCHEMA_CRATES: &[&str] = &["trace", "metrics", "cli"];

/// Default files where `Ordering::Relaxed` is sanctioned: the telemetry
/// registry's commutative counters and the counting allocator, both
/// covered by the loom models (`crates/telemetry/tests/loom_registry.rs`).
const DEFAULT_RELAXED_FILES: &[&str] = &[
    "crates/telemetry/src/registry.rs",
    "crates/telemetry/src/alloc.rs",
];

/// Default hot-path files where `Ordering::SeqCst` is flagged: one full
/// fence per recorded event would serialize the lock-free fast paths.
const DEFAULT_HOT_PATH_FILES: &[&str] = &[
    "crates/telemetry/src/registry.rs",
    "crates/telemetry/src/alloc.rs",
    "crates/gossip/src/engine.rs",
    "crates/gossip/src/node.rs",
    "crates/gossip/src/schedule.rs",
    "crates/core/src/runner.rs",
];

/// Default unordered-source and order-pin token sets for
/// `float-accumulation-order`.
const DEFAULT_UNORDERED_SOURCES: &[&str] = &[
    "HashMap",
    "HashSet",
    "read_dir",
    "par_iter",
    "into_par_iter",
    "try_iter",
];
const DEFAULT_ORDER_PINS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "from_sorted_rows",
];

/// Runs every rule over `files`, applies the allow-suppression pass, and
/// returns diagnostics sorted by `(path, line, rule)` so output (and CI
/// failures) are deterministic.
pub fn lint_files(files: &[ScannedFile], cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        // Malformed allows are never suppressible — they are reported
        // outside the candidate/suppression cycle.
        check_allows(file, &mut diags);

        // Pass 1: rules emit candidates, blind to escape hatches.
        let mut candidates = Vec::new();
        no_unordered_iteration(file, cfg, &mut candidates);
        no_wall_clock(file, cfg, &mut candidates);
        no_unseeded_rng(file, &mut candidates);
        no_panic_in_library(file, cfg, &mut candidates);
        float_accumulation_order(file, cfg, &mut candidates);
        schema_version_drift(file, cfg, &mut candidates);
        atomic_ordering_audit(file, cfg, &mut candidates);

        // Pass 2: suppression. A candidate covered by an allow is dropped
        // and the allow is marked used; an allow that covers nothing is a
        // finding in its own right.
        let mut used = vec![false; file.allows.len()];
        for candidate in candidates {
            match file.matching_allow(candidate.rule, candidate.line) {
                Some(idx) => used[idx] = true,
                None => diags.push(candidate),
            }
        }
        for (idx, allow) in file.allows.iter().enumerate() {
            let known = RULES.iter().any(|r| r.name == allow.rule);
            if !used[idx] && known {
                push(
                    &mut diags,
                    "unused-lint-allow",
                    file,
                    allow.line,
                    format!(
                        "lint:allow({}, \"{}\") suppresses nothing on line {} — \
                         the hazard it excused is gone; delete the comment",
                        allow.rule,
                        allow.reason,
                        allow.covered_line(),
                    ),
                );
            }
        }
    }
    stale_config_allowlists(files, cfg, &mut diags);
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    diags
}

/// Reports malformed allow comments and allows naming unknown rules.
fn check_allows(file: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    for bad in &file.bad_allows {
        push(
            diags,
            "malformed-allow",
            file,
            bad.line,
            bad.problem.clone(),
        );
    }
    for allow in &file.allows {
        if !RULES.iter().any(|r| r.name == allow.rule) {
            push(
                diags,
                "malformed-allow",
                file,
                allow.line,
                format!(
                    "lint:allow names unknown rule `{}` (see `cargo xtask lint --list-rules`)",
                    allow.rule
                ),
            );
        }
    }
}

/// Config keys whose values are workspace-relative file paths. An entry is
/// stale when it names no scanned file, or — for the *exemption* lists —
/// when the file it names no longer contains anything the list excuses
/// (e.g. a timing allowlist entry from before the clock-shim migration,
/// pointing at a file that no longer reads the wall clock). Both are
/// flagged at their line in `lint.toml` under `unused-lint-allow`.
fn stale_config_allowlists(files: &[ScannedFile], cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    for (section, key, values, line) in cfg.entries() {
        if !key.ends_with("-files") {
            continue;
        }
        for value in values {
            let file = files
                .iter()
                .find(|f| f.path.to_string_lossy().replace('\\', "/") == *value);
            let Some(file) = file else {
                diags.push(Diagnostic {
                    rule: "unused-lint-allow",
                    path: PathBuf::from("lint.toml"),
                    line,
                    message: format!(
                        "[{section}] {key} entry `{value}` names no scanned \
                         file — the allowlist entry is stale; delete it"
                    ),
                    snippet: format!("{key} entry `{value}`"),
                });
                continue;
            };
            // Exemption lists must still be earning their keep.
            let excuses_something = match (section, key) {
                ("no-wall-clock", "allow-files") => {
                    !file.paths("Instant", "now").is_empty()
                        || !file.paths("SystemTime", "now").is_empty()
                }
                ("atomic-ordering-audit", "relaxed-files") => file
                    .idents("Relaxed")
                    .iter()
                    .any(|&i| file.path_prefixed_by(i, "Ordering")),
                // Scrutiny lists (e.g. hot-path-files) add checks rather
                // than waive them; existing is enough.
                _ => true,
            };
            if !excuses_something {
                diags.push(Diagnostic {
                    rule: "unused-lint-allow",
                    path: PathBuf::from("lint.toml"),
                    line,
                    message: format!(
                        "[{section}] {key} entry `{value}` exempts nothing: \
                         the file no longer contains what the allowlist \
                         excuses — delete the entry"
                    ),
                    snippet: format!("{key} entry `{value}`"),
                });
            }
        }
    }
}

fn no_unordered_iteration(file: &ScannedFile, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-unordered-iteration";
    if file.kind != FileKind::Src {
        return;
    }
    let restricted = cfg.list(RULE, "restricted-crates");
    let is_restricted = match &file.crate_name {
        Some(name) if !restricted.is_empty() => restricted.iter().any(|c| c == name),
        Some(name) => DEFAULT_RESTRICTED.contains(&name.as_str()),
        None => false,
    };
    if !is_restricted {
        return;
    }
    for ty in ["HashMap", "HashSet"] {
        for i in file.idents(ty) {
            push(
                diags,
                RULE,
                file,
                file.sig_line(i),
                format!(
                    "`{ty}` in determinism-critical crate `{}`: hash iteration \
                     order is arbitrary and can reach merges, traces or \
                     reports — use BTreeMap/BTreeSet or a Vec keyed by index",
                    file.crate_name.as_deref().unwrap_or("?"),
                ),
            );
        }
    }
}

fn no_wall_clock(file: &ScannedFile, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-wall-clock";
    if file.kind != FileKind::Src {
        return;
    }
    let configured = cfg.list(RULE, "allow-files");
    let path = file.path.to_string_lossy().replace('\\', "/");
    let allowed_file = if configured.is_empty() {
        DEFAULT_CLOCK_FILES.contains(&path.as_str())
    } else {
        configured.iter().any(|f| f == &path)
    };
    if allowed_file {
        return;
    }
    for (ty, method) in [("Instant", "now"), ("SystemTime", "now")] {
        for i in file.paths(ty, method) {
            push(
                diags,
                RULE,
                file,
                file.sig_line(i),
                format!(
                    "`{ty}::{method}()` outside the wall-clock allowlist: wall \
                     time belongs behind the glmia_telemetry::clock shim; \
                     annotate observability-only reads with lint:allow"
                ),
            );
        }
    }
}

fn no_unseeded_rng(file: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-unseeded-rng";
    let mut hits: Vec<(usize, String)> = Vec::new();
    for ident in ["thread_rng", "from_entropy", "OsRng"] {
        hits.extend(
            file.idents(ident)
                .into_iter()
                .map(|i| (i, ident.to_string())),
        );
    }
    hits.extend(
        file.paths("rand", "random")
            .into_iter()
            .map(|i| (i, "rand::random".to_string())),
    );
    for (i, what) in hits {
        push(
            diags,
            RULE,
            file,
            file.sig_line(i),
            format!(
                "`{what}` draws OS entropy: every RNG must derive from the \
                 experiment seed (StdRng::seed_from_u64 or a SplitMix64 chain)"
            ),
        );
    }
}

fn no_panic_in_library(file: &ScannedFile, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-panic-in-library";
    if file.kind != FileKind::Src {
        return;
    }
    let crates = cfg.list(RULE, "crates");
    match &file.crate_name {
        Some(name) if !crates.is_empty() && !crates.iter().any(|c| c == name) => return,
        None => return,
        _ => {}
    }
    let report = |i: usize, message: String, diags: &mut Vec<Diagnostic>| {
        let line = file.sig_line(i);
        if file.in_test_span(line) {
            return;
        }
        push(diags, RULE, file, line, message);
    };
    for i in file.method_calls("unwrap") {
        report(
            i,
            "`.unwrap()` in library code: return a typed error, or use \
             `.expect(\"why this cannot fail\")` to document the invariant"
                .to_string(),
            diags,
        );
    }
    for mac in ["panic", "todo", "unimplemented"] {
        for i in file.macro_calls(mac) {
            report(
                i,
                format!("`{mac}!` in library code: surface a typed error instead"),
                diags,
            );
        }
    }
    for i in file.method_calls("expect") {
        if expect_message_is_empty(file, i) {
            report(
                i,
                "`.expect(\"\")` carries no justification: state why the \
                 value cannot be absent"
                    .to_string(),
                diags,
            );
        }
    }
}

/// Flags float reductions (`.sum`/`.product`/`.fold`) whose surrounding
/// statement span names an unordered source and no ordering pin.
///
/// The restricted crates ban hash containers outright
/// ([`no_unordered_iteration`]); everywhere else they are legal — but a
/// float reduction fed by an order-unspecified source silently re-rounds
/// per process, because float addition is not associative. A token scanner
/// cannot type the receiver chain, so the span heuristic is: from the
/// previous `;` (which reaches back through the enclosing signature or
/// binding, where the source type is usually spelled) to the next `;`.
/// Only spans with float evidence (`f32`/`f64` tokens or a float literal)
/// fire — integer reductions are exact in any order. A span that also
/// names an ordering pin (a `sort*` call, or a CSR sorted-row constructor
/// like `from_sorted_rows`) is exempt: the accumulation order is pinned
/// even though the source started unordered. Ordered containers
/// (`BTreeMap`) never match; a deliberate order-insensitive reduction
/// documents itself with `lint:allow`.
fn float_accumulation_order(file: &ScannedFile, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "float-accumulation-order";
    if file.kind != FileKind::Src {
        return;
    }
    let configured_sources = cfg.list(RULE, "unordered-sources");
    let sources: Vec<&str> = if configured_sources.is_empty() {
        DEFAULT_UNORDERED_SOURCES.to_vec()
    } else {
        configured_sources.iter().map(String::as_str).collect()
    };
    let configured_pins = cfg.list(RULE, "order-pins");
    let pins: Vec<&str> = if configured_pins.is_empty() {
        DEFAULT_ORDER_PINS.to_vec()
    } else {
        configured_pins.iter().map(String::as_str).collect()
    };
    let masked = &file.masked;
    for method in ["sum", "product", "fold"] {
        for i in file.method_calls(method) {
            let off = file.sig_token(i).map(|t| t.start).unwrap_or_default();
            let span = &masked[span_start(masked, off)..span_end(masked, off)];
            let Some(source) = sources
                .iter()
                .find(|s| !ident_occurrences(span, s).is_empty())
            else {
                continue;
            };
            if !span_has_float_evidence(span) {
                continue;
            }
            if pins.iter().any(|p| !ident_occurrences(span, p).is_empty()) {
                continue; // accumulation order is pinned despite the source
            }
            push(
                diags,
                RULE,
                file,
                file.sig_line(i),
                format!(
                    "`.{method}` over floats within reach of `{source}` and no \
                     ordering pin: iteration order varies per process and \
                     float accumulation is order-sensitive, so the rounded \
                     result drifts across reruns — collect into a Vec, sort \
                     by key, then reduce"
                ),
            );
        }
    }
}

/// Flags integer-literal schema versions in the schema-bearing crates.
///
/// Every stream and manifest declares its schema through the central
/// consts in `glmia-trace` (`SCHEMA_VERSION`, `FAULT_SCHEMA_VERSION`,
/// `THREAT_SCHEMA_VERSION`, `TELEMETRY_SCHEMA_VERSION`); a hardcoded `2`
/// keeps compiling when the constants move and silently drifts. Matched
/// shapes: `schema: 2` (struct literals, tests included), `schema == 2` /
/// `!=` / `<` / `<=` / `>` / `>=` in either direction, `schema = 2`
/// assignments, and `assert_eq!(x.schema, 2)`.
fn schema_version_drift(file: &ScannedFile, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "schema-version-drift";
    if !matches!(file.kind, FileKind::Src | FileKind::Tests) {
        return;
    }
    let configured = cfg.list(RULE, "crates");
    let covered = match &file.crate_name {
        Some(name) if !configured.is_empty() => configured.iter().any(|c| c == name),
        Some(name) => DEFAULT_SCHEMA_CRATES.contains(&name.as_str()),
        None => false,
    };
    if !covered {
        return;
    }
    let is_int = |i: usize| {
        file.sig_token(i)
            .is_some_and(|t| t.kind == crate::lexer::TokenKind::Int)
    };
    for i in file.idents("schema") {
        // `schema::foo` paths are module references, not versions.
        if file.sig_matches(i + 1, &[":", ":"]) {
            continue;
        }
        let hit = if file.sig_text(i + 1) == ":" && is_int(i + 2) {
            true // struct literal field
        } else if file.sig_matches(i + 1, &["=", "="])
            || file.sig_matches(i + 1, &["!", "="])
            || ((file.sig_text(i + 1) == "<" || file.sig_text(i + 1) == ">")
                && file.sig_text(i + 2) == "=")
        {
            // two-token operator: `== n`, `!= n`, `<= n`, `>= n`
            is_int(i + 3)
        } else if file.sig_text(i + 1) == "<"
            || file.sig_text(i + 1) == ">"
            || file.sig_text(i + 1) == "="
        {
            // one-token operator: `< n`, `> n`, or plain assignment
            // (`==` was consumed by the branch above)
            is_int(i + 2)
        } else if file.sig_text(i + 1) == "," && is_int(i + 2) {
            // `assert_eq!(header.schema, 2)`: an assert macro within reach.
            (i.saturating_sub(12)..i).any(|j| {
                let t = file.sig_text(j);
                t == "assert_eq" || t == "assert_ne"
            })
        } else {
            false
        };
        // Reversed comparison: `2 == schema` / `2 == header.schema`.
        let reversed = (i >= 3
            && is_int(i - 3)
            && (file.sig_matches(i - 2, &["=", "="]) || file.sig_matches(i - 2, &["!", "="])))
            || (i >= 5
                && is_int(i - 5)
                && (file.sig_matches(i - 4, &["=", "="]) || file.sig_matches(i - 4, &["!", "="]))
                && file.sig_text(i - 1) == ".");
        if hit || reversed {
            push(
                diags,
                RULE,
                file,
                file.sig_line(i),
                "schema version written as an integer literal: reference the \
                 central consts (SCHEMA_VERSION / FAULT_SCHEMA_VERSION / \
                 THREAT_SCHEMA_VERSION / TELEMETRY_SCHEMA_VERSION) so the \
                 declaration cannot drift from the writer"
                    .to_string(),
            );
        }
    }
}

/// Audits explicit atomic memory orderings.
///
/// `Ordering::Relaxed` provides no happens-before edges; it is only sound
/// for the telemetry registry's commutative counter protocol, which the
/// loom models exhaustively check — so Relaxed is permitted solely in the
/// `relaxed-files` allowlist. `Ordering::SeqCst` is the opposite hazard:
/// correct but a full fence, flagged in the `hot-path-files` where one
/// fence per recorded event would serialize the lock-free fast path.
fn atomic_ordering_audit(file: &ScannedFile, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "atomic-ordering-audit";
    if file.kind != FileKind::Src {
        return;
    }
    let path = file.path.to_string_lossy().replace('\\', "/");
    let configured_relaxed = cfg.list(RULE, "relaxed-files");
    let relaxed_ok = if configured_relaxed.is_empty() {
        DEFAULT_RELAXED_FILES.contains(&path.as_str())
    } else {
        configured_relaxed.iter().any(|f| f == &path)
    };
    let configured_hot = cfg.list(RULE, "hot-path-files");
    let hot = if configured_hot.is_empty() {
        DEFAULT_HOT_PATH_FILES.contains(&path.as_str())
    } else {
        configured_hot.iter().any(|f| f == &path)
    };
    if !relaxed_ok {
        for i in file.idents("Relaxed") {
            if !file.path_prefixed_by(i, "Ordering") {
                continue;
            }
            push(
                diags,
                RULE,
                file,
                file.sig_line(i),
                "`Ordering::Relaxed` outside the audited instrument allowlist: \
                 Relaxed is only proven safe for the loom-modeled commutative \
                 counters (lint.toml [atomic-ordering-audit] relaxed-files) — \
                 use Acquire/Release, or extend the allowlist together with a \
                 loom model"
                    .to_string(),
            );
        }
    }
    if hot {
        for i in file.idents("SeqCst") {
            if !file.path_prefixed_by(i, "Ordering") {
                continue;
            }
            push(
                diags,
                RULE,
                file,
                file.sig_line(i),
                "`Ordering::SeqCst` on a hot path: a sequentially-consistent \
                 fence per recorded event defeats the lock-free registry \
                 design — the loom-checked Relaxed/fetch_max protocol (or \
                 Acquire/Release) is the sanctioned form"
                    .to_string(),
            );
        }
    }
}

/// Backward statement-ish boundary for the float-accumulation rule: just
/// after the previous `;`, or just after a `}` that ends its line (an item
/// or block boundary — a closure's `}` inside a chain is followed by `)`
/// or `.`, not a newline, so chains spanning closures stay in one span).
/// Reaching back through the enclosing signature is deliberate: that is
/// where the container type of the receiver is usually spelled.
fn span_start(masked: &str, off: usize) -> usize {
    let bytes = masked.as_bytes();
    (0..off.min(bytes.len()))
        .rev()
        .find(|&i| bytes[i] == b';' || (bytes[i] == b'}' && bytes.get(i + 1) == Some(&b'\n')))
        .map_or(0, |i| i + 1)
}

/// Forward twin of [`span_start`]: up to the next `;` or line-ending `}`.
fn span_end(masked: &str, off: usize) -> usize {
    let bytes = masked.as_bytes();
    (off..masked.len())
        .find(|&i| bytes[i] == b';' || (bytes[i] == b'}' && bytes.get(i + 1) == Some(&b'\n')))
        .unwrap_or(masked.len())
}

/// Whether a masked span mentions `f32`/`f64` or contains a float literal
/// (`digit.digit` with no identifier byte immediately before).
fn span_has_float_evidence(span: &str) -> bool {
    if !ident_occurrences(span, "f32").is_empty() || !ident_occurrences(span, "f64").is_empty() {
        return true;
    }
    let bytes = span.as_bytes();
    bytes.windows(3).enumerate().any(|(i, w)| {
        w[0].is_ascii_digit()
            && w[1] == b'.'
            && w[2].is_ascii_digit()
            && (i == 0 || !is_ident_byte(bytes[i - 1]) || bytes[i - 1].is_ascii_digit())
    })
}

fn push(
    diags: &mut Vec<Diagnostic>,
    rule: &'static str,
    file: &ScannedFile,
    line: usize,
    message: String,
) {
    diags.push(Diagnostic {
        rule,
        path: file.path.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
    });
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of `ident` as a standalone identifier in a masked span
/// (used by the statement-span heuristic, where flat text is the point).
fn ident_occurrences(masked: &str, ident: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(found) = masked[from..].find(ident) {
        let at = from + found;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + ident.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + ident.len();
    }
    out
}

/// Whether the `.expect(` at significant-stream position `i` passes an
/// empty (or whitespace-only) string literal. Non-literal arguments are
/// not judged.
fn expect_message_is_empty(file: &ScannedFile, i: usize) -> bool {
    if file.sig_text(i + 1) != "(" {
        return false;
    }
    let Some(arg) = file.sig_token(i + 2) else {
        return false;
    };
    if arg.kind != crate::lexer::TokenKind::Str {
        return false;
    }
    let text = arg.text(&file.source);
    text.trim_start_matches('b')
        .trim_matches('"')
        .trim()
        .is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> ScannedFile {
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .map(str::to_string);
        let kind = if path.contains("/src/") {
            FileKind::Src
        } else {
            FileKind::Tests
        };
        ScannedFile::new(PathBuf::from(path), crate_name, kind, src.to_string())
    }

    fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_files(&[scan(path, src)], &LintConfig::default())
    }

    fn fixture(name: &str) -> &'static str {
        match name {
            "no_unordered_iteration_ok" => include_str!("../fixtures/no_unordered_iteration_ok.rs"),
            "no_unordered_iteration_bad" => {
                include_str!("../fixtures/no_unordered_iteration_bad.rs")
            }
            "no_wall_clock_ok" => include_str!("../fixtures/no_wall_clock_ok.rs"),
            "no_wall_clock_bad" => include_str!("../fixtures/no_wall_clock_bad.rs"),
            "no_unseeded_rng_ok" => include_str!("../fixtures/no_unseeded_rng_ok.rs"),
            "no_unseeded_rng_bad" => include_str!("../fixtures/no_unseeded_rng_bad.rs"),
            "no_panic_in_library_ok" => include_str!("../fixtures/no_panic_in_library_ok.rs"),
            "no_panic_in_library_bad" => include_str!("../fixtures/no_panic_in_library_bad.rs"),
            "float_accumulation_order_ok" => {
                include_str!("../fixtures/float_accumulation_order_ok.rs")
            }
            "float_accumulation_order_bad" => {
                include_str!("../fixtures/float_accumulation_order_bad.rs")
            }
            "schema_version_drift_ok" => include_str!("../fixtures/schema_version_drift_ok.rs"),
            "schema_version_drift_bad" => include_str!("../fixtures/schema_version_drift_bad.rs"),
            "atomic_ordering_ok" => include_str!("../fixtures/atomic_ordering_ok.rs"),
            "atomic_ordering_bad" => include_str!("../fixtures/atomic_ordering_bad.rs"),
            "unused_lint_allow_ok" => include_str!("../fixtures/unused_lint_allow_ok.rs"),
            "unused_lint_allow_bad" => include_str!("../fixtures/unused_lint_allow_bad.rs"),
            "scanner_edge_cases_ok" => include_str!("../fixtures/scanner_edge_cases_ok.rs"),
            "scanner_edge_cases_bad" => include_str!("../fixtures/scanner_edge_cases_bad.rs"),
            other => panic!("unknown fixture {other}"),
        }
    }

    #[test]
    fn unordered_iteration_fixture_pair() {
        let clean = lint_one(
            "crates/gossip/src/fixture.rs",
            fixture("no_unordered_iteration_ok"),
        );
        assert_eq!(clean, Vec::new(), "ok fixture must lint clean");
        let diags = lint_one(
            "crates/gossip/src/fixture.rs",
            fixture("no_unordered_iteration_bad"),
        );
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "no-unordered-iteration"));
        assert!(diags.iter().all(|d| d.path.ends_with("fixture.rs")));
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![4, 8, 12]
        );
    }

    #[test]
    fn unordered_iteration_ignores_unrestricted_crates() {
        let diags = lint_one(
            "crates/nn/src/fixture.rs",
            fixture("no_unordered_iteration_bad"),
        );
        assert!(diags.is_empty(), "nn is not a restricted crate: {diags:?}");
    }

    #[test]
    fn wall_clock_fixture_pair() {
        let clean = lint_one("crates/core/src/fixture.rs", fixture("no_wall_clock_ok"));
        assert_eq!(clean, Vec::new());
        let diags = lint_one("crates/core/src/fixture.rs", fixture("no_wall_clock_bad"));
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "no-wall-clock"));
        assert_eq!(diags[0].line, 5);
        assert_eq!(diags[1].line, 9);
    }

    #[test]
    fn wall_clock_allowlisted_file_is_exempt() {
        let diags = lint_one(
            "crates/telemetry/src/clock.rs",
            fixture("no_wall_clock_bad"),
        );
        assert!(diags.is_empty(), "{diags:?}");
        // The pre-telemetry allowlist entries no longer get a pass.
        let diags = lint_one("crates/trace/src/phase.rs", fixture("no_wall_clock_bad"));
        assert!(!diags.is_empty(), "stale allowlist entry still exempt");
    }

    #[test]
    fn unseeded_rng_fixture_pair() {
        let clean = lint_one("crates/dist/src/fixture.rs", fixture("no_unseeded_rng_ok"));
        assert_eq!(clean, Vec::new());
        let diags = lint_one("crates/dist/src/fixture.rs", fixture("no_unseeded_rng_bad"));
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "no-unseeded-rng"));
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![5, 9, 13]
        );
    }

    #[test]
    fn unseeded_rng_applies_to_tests_too() {
        let diags = lint_one(
            "crates/dist/tests/fixture.rs",
            fixture("no_unseeded_rng_bad"),
        );
        assert_eq!(diags.len(), 3, "rng rule covers test code: {diags:?}");
    }

    #[test]
    fn panic_fixture_pair() {
        let clean = lint_one(
            "crates/mia/src/fixture.rs",
            fixture("no_panic_in_library_ok"),
        );
        assert_eq!(clean, Vec::new());
        let diags = lint_one(
            "crates/mia/src/fixture.rs",
            fixture("no_panic_in_library_bad"),
        );
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "no-panic-in-library"));
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![4, 9, 14]
        );
        assert!(diags[0].message.contains("unwrap"));
        assert!(diags[1].message.contains("panic"));
        assert!(diags[2].message.contains("expect"));
    }

    #[test]
    fn float_accumulation_fixture_pair() {
        // nn is NOT in the no-unordered-iteration restricted set, so the
        // diagnostics below are this rule's alone.
        let clean = lint_one(
            "crates/nn/src/fixture.rs",
            fixture("float_accumulation_order_ok"),
        );
        assert_eq!(clean, Vec::new(), "ok fixture must lint clean");
        let diags = lint_one(
            "crates/nn/src/fixture.rs",
            fixture("float_accumulation_order_bad"),
        );
        assert_eq!(diags.len(), 4, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "float-accumulation-order"));
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![7, 11, 15, 20]
        );
        assert!(diags[0].message.contains("sum"));
        assert!(diags[1].message.contains("product"));
        assert!(diags[2].message.contains("fold"));
        assert!(diags[0].message.contains("HashMap"));
        assert!(diags[1].message.contains("HashSet"));
        assert!(diags[3].message.contains("read_dir"));
    }

    #[test]
    fn float_accumulation_applies_on_top_of_restricted_crates() {
        // In a restricted crate the same source also trips the container
        // ban; both rules report, each at its own line.
        let diags = lint_one(
            "crates/gossip/src/fixture.rs",
            fixture("float_accumulation_order_bad"),
        );
        assert!(diags.iter().any(|d| d.rule == "float-accumulation-order"));
        assert!(diags.iter().any(|d| d.rule == "no-unordered-iteration"));
    }

    #[test]
    fn float_accumulation_skips_test_and_bench_files() {
        let diags = lint_one(
            "crates/nn/tests/fixture.rs",
            fixture("float_accumulation_order_bad"),
        );
        assert!(
            diags.is_empty(),
            "rule covers library sources only: {diags:?}"
        );
    }

    #[test]
    fn float_accumulation_allow_suppresses_with_reason() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u8, f64>) -> f64 {\n    // lint:allow(float-accumulation-order, \"sum feeds an order-insensitive count\")\n    m.values().sum::<f64>()\n}\n";
        assert!(lint_one("crates/nn/src/f.rs", src).is_empty());
    }

    #[test]
    fn order_pin_exempts_within_one_statement_span() {
        // `par_iter` is an unordered source, but the CSR constructor pins
        // row order in the same statement span, so the reduction is exempt.
        let src = "pub fn f(w: &Csr) -> f64 {\n    Csr::from_sorted_rows(w.rows()).values().par_iter().map(|v| v * 0.5).sum::<f64>()\n}\n";
        assert!(lint_one("crates/nn/src/f.rs", src).is_empty());
        // Without the pin, the same reduction fires.
        let src = "pub fn f(w: &Csr) -> f64 {\n    w.values().par_iter().map(|v| v * 0.5).sum::<f64>()\n}\n";
        let diags = lint_one("crates/nn/src/f.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("par_iter"));
    }

    #[test]
    fn schema_drift_fixture_pair() {
        let clean = lint_one(
            "crates/trace/src/fixture.rs",
            fixture("schema_version_drift_ok"),
        );
        assert_eq!(clean, Vec::new(), "ok fixture must lint clean");
        let diags = lint_one(
            "crates/trace/src/fixture.rs",
            fixture("schema_version_drift_bad"),
        );
        assert_eq!(diags.len(), 4, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "schema-version-drift"));
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![9, 14, 19, 26]
        );
    }

    #[test]
    fn schema_drift_covers_tests_but_only_schema_crates() {
        let diags = lint_one(
            "crates/trace/tests/fixture.rs",
            fixture("schema_version_drift_bad"),
        );
        assert_eq!(
            diags.len(),
            4,
            "tests in schema crates are covered: {diags:?}"
        );
        let diags = lint_one(
            "crates/nn/src/fixture.rs",
            fixture("schema_version_drift_bad"),
        );
        assert!(diags.is_empty(), "nn is not schema-bearing: {diags:?}");
    }

    #[test]
    fn atomic_ordering_fixture_pair() {
        let clean = lint_one(
            "crates/telemetry/src/registry.rs",
            fixture("atomic_ordering_ok"),
        );
        assert_eq!(clean, Vec::new(), "allowlisted file may use Relaxed");
        let diags = lint_one(
            "crates/gossip/src/engine.rs",
            fixture("atomic_ordering_bad"),
        );
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "atomic-ordering-audit"));
        assert!(diags[0].message.contains("Relaxed"));
        assert!(diags[2].message.contains("SeqCst"));
    }

    #[test]
    fn seqcst_is_fine_off_the_hot_paths() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(a: &AtomicU64) -> u64 {\n    a.load(Ordering::SeqCst)\n}\n";
        let diags = lint_one("crates/metrics/src/cold.rs", src);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unused_allow_fixture_pair() {
        let clean = lint_one("crates/nn/src/fixture.rs", fixture("unused_lint_allow_ok"));
        assert_eq!(clean, Vec::new(), "a working allow is not unused");
        let diags = lint_one("crates/nn/src/fixture.rs", fixture("unused_lint_allow_bad"));
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "unused-lint-allow"));
        assert!(diags[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn stale_config_allowlist_entry_is_flagged_at_its_line() {
        let cfg = LintConfig::parse(
            "[no-wall-clock]\nallow-files = [\n  \"crates/telemetry/src/clock.rs\",\n  \"crates/trace/src/phase_timer_old.rs\",\n]\n",
        )
        .expect("config parses");
        let files = vec![scan(
            "crates/telemetry/src/clock.rs",
            "use std::time::Instant;\npub fn now() -> Instant { Instant::now() }\n",
        )];
        let diags = lint_files(&files, &cfg);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "unused-lint-allow");
        assert_eq!(diags[0].path, PathBuf::from("lint.toml"));
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("phase_timer_old.rs"));
    }

    #[test]
    fn allowlist_entry_exempting_nothing_is_flagged() {
        let cfg =
            LintConfig::parse("[no-wall-clock]\nallow-files = [\"crates/trace/src/phase.rs\"]\n")
                .expect("config parses");
        // The file exists but migrated to the clock shim: nothing left to
        // excuse, so the entry is dead weight.
        let files = vec![scan(
            "crates/trace/src/phase.rs",
            "pub fn f() -> u64 { glmia_telemetry::clock::monotonic_micros() }\n",
        )];
        let diags = lint_files(&files, &cfg);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "unused-lint-allow");
        assert!(diags[0].message.contains("exempts nothing"));
    }

    #[test]
    fn scanner_edge_fixture_pair() {
        let clean = lint_one(
            "crates/dist/src/fixture.rs",
            fixture("scanner_edge_cases_ok"),
        );
        assert_eq!(
            clean,
            Vec::new(),
            "banned tokens inside literals and comments must not fire"
        );
        let diags = lint_one(
            "crates/dist/src/fixture.rs",
            fixture("scanner_edge_cases_bad"),
        );
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "no-unseeded-rng"));
    }

    #[test]
    fn allow_with_reason_suppresses_and_without_reports() {
        let src = "fn f() {\n    let t = std::time::Instant::now(); // lint:allow(no-wall-clock, \"bench timing\")\n}\n";
        assert!(lint_one("crates/core/src/f.rs", src).is_empty());
        let src =
            "fn f() {\n    let t = std::time::Instant::now(); // lint:allow(no-wall-clock)\n}\n";
        let diags = lint_one("crates/core/src/f.rs", src);
        assert_eq!(diags.len(), 2, "{diags:?}"); // the finding + the malformed allow
        assert!(diags.iter().any(|d| d.rule == "malformed-allow"));
        assert!(diags.iter().any(|d| d.rule == "no-wall-clock"));
    }

    #[test]
    fn allow_naming_unknown_rule_is_reported_once_not_unused() {
        let diags = lint_one(
            "crates/core/src/f.rs",
            "// lint:allow(no-such-rule, \"oops\")\nfn f() {}\n",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "malformed-allow");
        assert!(diags[0].message.contains("no-such-rule"));
    }

    #[test]
    fn tokens_inside_strings_and_comments_do_not_fire() {
        let src = "fn f() -> &'static str {\n    // thread_rng() would be bad\n    \"rand::random HashMap Instant::now\"\n}\n";
        assert!(lint_one("crates/gossip/src/f.rs", src).is_empty());
    }

    #[test]
    fn diagnostics_are_sorted_and_display_cleanly() {
        let diags = lint_one(
            "crates/gossip/src/fixture.rs",
            fixture("no_unordered_iteration_bad"),
        );
        let mut sorted = diags.clone();
        sorted.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        assert_eq!(diags, sorted);
        let rendered = diags[0].to_string();
        assert!(rendered.starts_with("error[no-unordered-iteration]"));
        assert!(rendered.contains("fixture.rs:4"));
    }
}

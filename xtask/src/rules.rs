//! The determinism & soundness rules and their matching engine.
//!
//! Each rule scans the masked token stream of a [`ScannedFile`] (comments
//! and literals already blanked) for patterns the stock toolchain cannot
//! reject, and reports [`Diagnostic`]s. Findings are suppressed by a
//! `// lint:allow(rule, "reason")` on the same line or alone on the line
//! above — the reason string is mandatory, so every exemption documents
//! itself.

use std::path::PathBuf;

use crate::config::LintConfig;
use crate::scanner::{FileKind, ScannedFile};

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// What was found.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        writeln!(f, "  --> {}:{}", self.path.display(), self.line)?;
        write!(f, "   |  {}", self.snippet)
    }
}

/// A rule's registry entry.
pub struct Rule {
    /// Stable kebab-case name (used in `lint:allow` and `lint.toml`).
    pub name: &'static str,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
}

/// Every rule the pass knows, in reporting order.
pub const RULES: &[Rule] = &[
    Rule {
        name: "no-unordered-iteration",
        summary: "determinism-critical crates must not name HashMap/HashSet: \
                  their iteration order is per-process hash order and can \
                  leak into merges, traces and reports",
    },
    Rule {
        name: "no-wall-clock",
        summary: "Instant::now/SystemTime::now only in the timing allowlist: \
                  wall-clock reads in simulation or analysis code break rerun \
                  byte-identity",
    },
    Rule {
        name: "no-unseeded-rng",
        summary: "thread_rng/rand::random/from_entropy/OsRng are banned \
                  everywhere: all randomness derives from the experiment seed",
    },
    Rule {
        name: "no-panic-in-library",
        summary: "library code must not unwrap()/panic!/todo!/unimplemented! \
                  outside #[cfg(test)]; .expect(\"non-empty reason\") is the \
                  sanctioned, self-justifying form",
    },
    Rule {
        name: "float-reduction-over-unordered-containers",
        summary: "float sums/products/folds within reach of a HashMap/HashSet \
                  are banned in every crate: float addition is not associative, \
                  so hash iteration order changes the rounded result — iterate \
                  a sorted projection instead",
    },
    Rule {
        name: "malformed-allow",
        summary: "a lint:allow comment must name a known rule and carry a \
                  non-empty justification",
    },
];

/// Default determinism-critical crates for `no-unordered-iteration`.
const DEFAULT_RESTRICTED: &[&str] = &["core", "gossip", "metrics", "trace"];

/// Default wall-clock allowlist: the telemetry clock shim is the one
/// sanctioned `Instant::now` site — phase timers, the progress heartbeat
/// and run manifests all read time through `glmia_telemetry::clock`.
const DEFAULT_CLOCK_FILES: &[&str] = &["crates/telemetry/src/clock.rs"];

/// Runs every rule over `files`, returning diagnostics sorted by
/// `(path, line, rule)` so output (and CI failures) are deterministic.
pub fn lint_files(files: &[ScannedFile], cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for file in files {
        check_allows(file, &mut diags);
        no_unordered_iteration(file, cfg, &mut diags);
        no_wall_clock(file, cfg, &mut diags);
        no_unseeded_rng(file, &mut diags);
        no_panic_in_library(file, cfg, &mut diags);
        float_reduction_over_unordered(file, &mut diags);
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    diags
}

/// Reports malformed allow comments and allows naming unknown rules.
fn check_allows(file: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    for bad in &file.bad_allows {
        push(
            diags,
            "malformed-allow",
            file,
            bad.line,
            bad.problem.clone(),
        );
    }
    for allow in &file.allows {
        if !RULES.iter().any(|r| r.name == allow.rule) {
            push(
                diags,
                "malformed-allow",
                file,
                allow.line,
                format!(
                    "lint:allow names unknown rule `{}` (see `cargo xtask lint --list-rules`)",
                    allow.rule
                ),
            );
        }
    }
}

fn no_unordered_iteration(file: &ScannedFile, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-unordered-iteration";
    if file.kind != FileKind::Src {
        return;
    }
    let restricted = cfg.list(RULE, "restricted-crates");
    let is_restricted = match &file.crate_name {
        Some(name) if !restricted.is_empty() => restricted.iter().any(|c| c == name),
        Some(name) => DEFAULT_RESTRICTED.contains(&name.as_str()),
        None => false,
    };
    if !is_restricted {
        return;
    }
    for ty in ["HashMap", "HashSet"] {
        for off in ident_occurrences(&file.masked, ty) {
            let line = file.line_of(off);
            if file.is_allowed(RULE, line) {
                continue;
            }
            push(
                diags,
                RULE,
                file,
                line,
                format!(
                    "`{ty}` in determinism-critical crate `{}`: hash iteration \
                     order is arbitrary and can reach merges, traces or \
                     reports — use BTreeMap/BTreeSet or a Vec keyed by index",
                    file.crate_name.as_deref().unwrap_or("?"),
                ),
            );
        }
    }
}

fn no_wall_clock(file: &ScannedFile, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-wall-clock";
    if file.kind != FileKind::Src {
        return;
    }
    let configured = cfg.list(RULE, "allow-files");
    let path = file.path.to_string_lossy().replace('\\', "/");
    let allowed_file = if configured.is_empty() {
        DEFAULT_CLOCK_FILES.contains(&path.as_str())
    } else {
        configured.iter().any(|f| f == &path)
    };
    if allowed_file {
        return;
    }
    for call in ["Instant::now", "SystemTime::now"] {
        for off in path_occurrences(&file.masked, call) {
            let line = file.line_of(off);
            if file.is_allowed(RULE, line) {
                continue;
            }
            push(
                diags,
                RULE,
                file,
                line,
                format!(
                    "`{call}()` outside the wall-clock allowlist: timing belongs \
                     in glmia-trace phase timers; annotate observability-only \
                     reads with lint:allow"
                ),
            );
        }
    }
}

fn no_unseeded_rng(file: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-unseeded-rng";
    let idents = ["thread_rng", "from_entropy", "OsRng"];
    let paths = ["rand::random"];
    let mut hits: Vec<(usize, &str)> = Vec::new();
    for ident in idents {
        hits.extend(
            ident_occurrences(&file.masked, ident)
                .into_iter()
                .map(|o| (o, ident)),
        );
    }
    for p in paths {
        hits.extend(
            path_occurrences(&file.masked, p)
                .into_iter()
                .map(|o| (o, p)),
        );
    }
    for (off, what) in hits {
        let line = file.line_of(off);
        if file.is_allowed(RULE, line) {
            continue;
        }
        push(
            diags,
            RULE,
            file,
            line,
            format!(
                "`{what}` draws OS entropy: every RNG must derive from the \
                 experiment seed (StdRng::seed_from_u64 or a SplitMix64 chain)"
            ),
        );
    }
}

fn no_panic_in_library(file: &ScannedFile, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "no-panic-in-library";
    if file.kind != FileKind::Src {
        return;
    }
    let crates = cfg.list(RULE, "crates");
    match &file.crate_name {
        Some(name) if !crates.is_empty() && !crates.iter().any(|c| c == name) => return,
        None => return,
        _ => {}
    }
    let report = |off: usize, message: String, diags: &mut Vec<Diagnostic>| {
        let line = file.line_of(off);
        if file.in_test_span(line) || file.is_allowed(RULE, line) {
            return;
        }
        push(diags, RULE, file, line, message);
    };
    for off in method_occurrences(&file.masked, "unwrap") {
        report(
            off,
            "`.unwrap()` in library code: return a typed error, or use \
             `.expect(\"why this cannot fail\")` to document the invariant"
                .to_string(),
            diags,
        );
    }
    for mac in ["panic", "todo", "unimplemented"] {
        for off in macro_occurrences(&file.masked, mac) {
            report(
                off,
                format!("`{mac}!` in library code: surface a typed error instead"),
                diags,
            );
        }
    }
    for off in method_occurrences(&file.masked, "expect") {
        if expect_message_is_empty(file, off) {
            report(
                off,
                "`.expect(\"\")` carries no justification: state why the \
                 value cannot be absent"
                    .to_string(),
                diags,
            );
        }
    }
}

/// Flags float reductions (`.sum`/`.product`/`.fold`) whose surrounding
/// statement span also names `HashMap` or `HashSet`.
///
/// The restricted crates ban the containers outright
/// ([`no_unordered_iteration`]); everywhere else they are legal — but a
/// float reduction fed by hash-order iteration silently re-rounds per
/// process, because float addition is not associative. A token scanner
/// cannot type the receiver chain, so the span heuristic is: from the
/// previous `;` (which reaches back through the enclosing signature or
/// binding, where the container type is usually spelled) to the next `;`.
/// Only spans with float evidence (`f32`/`f64` tokens or a float literal)
/// fire — integer reductions are exact in any order. Ordered containers
/// (`BTreeMap`) never match; a deliberate order-insensitive reduction over
/// a hash container documents itself with `lint:allow`.
fn float_reduction_over_unordered(file: &ScannedFile, diags: &mut Vec<Diagnostic>) {
    const RULE: &str = "float-reduction-over-unordered-containers";
    if file.kind != FileKind::Src {
        return;
    }
    let masked = &file.masked;
    for method in ["sum", "product", "fold"] {
        for off in method_occurrences(masked, method) {
            let span = &masked[span_start(masked, off)..span_end(masked, off)];
            let container = ["HashMap", "HashSet"]
                .into_iter()
                .find(|c| !ident_occurrences(span, c).is_empty());
            let Some(container) = container else { continue };
            if !span_has_float_evidence(span) {
                continue;
            }
            let line = file.line_of(off);
            if file.is_allowed(RULE, line) {
                continue;
            }
            push(
                diags,
                RULE,
                file,
                line,
                format!(
                    "`.{method}` over floats within reach of `{container}`: hash \
                     iteration order varies per process and float accumulation \
                     is order-sensitive, so the rounded result drifts across \
                     reruns — collect into a Vec, sort by key, then reduce"
                ),
            );
        }
    }
}

/// Backward statement-ish boundary for the float-reduction rule: just
/// after the previous `;`, or just after a `}` that ends its line (an item
/// or block boundary — a closure's `}` inside a chain is followed by `)`
/// or `.`, not a newline, so chains spanning closures stay in one span).
/// Reaching back through the enclosing signature is deliberate: that is
/// where the container type of the receiver is usually spelled.
fn span_start(masked: &str, off: usize) -> usize {
    let bytes = masked.as_bytes();
    (0..off)
        .rev()
        .find(|&i| bytes[i] == b';' || (bytes[i] == b'}' && bytes.get(i + 1) == Some(&b'\n')))
        .map_or(0, |i| i + 1)
}

/// Forward twin of [`span_start`]: up to the next `;` or line-ending `}`.
fn span_end(masked: &str, off: usize) -> usize {
    let bytes = masked.as_bytes();
    (off..masked.len())
        .find(|&i| bytes[i] == b';' || (bytes[i] == b'}' && bytes.get(i + 1) == Some(&b'\n')))
        .unwrap_or(masked.len())
}

/// Whether a masked span mentions `f32`/`f64` or contains a float literal
/// (`digit.digit` with no identifier byte immediately before).
fn span_has_float_evidence(span: &str) -> bool {
    if !ident_occurrences(span, "f32").is_empty() || !ident_occurrences(span, "f64").is_empty() {
        return true;
    }
    let bytes = span.as_bytes();
    bytes.windows(3).enumerate().any(|(i, w)| {
        w[0].is_ascii_digit()
            && w[1] == b'.'
            && w[2].is_ascii_digit()
            && (i == 0 || !is_ident_byte(bytes[i - 1]) || bytes[i - 1].is_ascii_digit())
    })
}

fn push(
    diags: &mut Vec<Diagnostic>,
    rule: &'static str,
    file: &ScannedFile,
    line: usize,
    message: String,
) {
    diags.push(Diagnostic {
        rule,
        path: file.path.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
    });
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Byte offsets of `ident` as a standalone identifier in `masked`.
fn ident_occurrences(masked: &str, ident: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(found) = masked[from..].find(ident) {
        let at = from + found;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + ident.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + ident.len();
    }
    out
}

/// Byte offsets of a `a::b` path pattern with identifier boundaries on
/// both ends (e.g. `Instant::now`, `rand::random`).
fn path_occurrences(masked: &str, path: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(found) = masked[from..].find(path) {
        let at = from + found;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let after = at + path.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + path.len();
    }
    out
}

/// Occurrences of `.<method>` (method-call position).
fn method_occurrences(masked: &str, method: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    ident_occurrences(masked, method)
        .into_iter()
        .filter(|&at| {
            bytes[..at]
                .iter()
                .rev()
                .find(|b| !b.is_ascii_whitespace())
                .is_some_and(|&b| b == b'.')
        })
        .collect()
}

/// Occurrences of `<name>!` (macro invocation position).
fn macro_occurrences(masked: &str, name: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    ident_occurrences(masked, name)
        .into_iter()
        .filter(|&at| {
            bytes[at + name.len()..]
                .iter()
                .find(|b| !b.is_ascii_whitespace())
                .is_some_and(|&b| b == b'!')
        })
        .collect()
}

/// Whether the `.expect(` at masked offset `off` passes an empty (or
/// whitespace-only) string literal. Non-literal arguments are not judged.
fn expect_message_is_empty(file: &ScannedFile, off: usize) -> bool {
    let bytes = file.source.as_bytes();
    let mut i = off + "expect".len();
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'(') {
        return false;
    }
    i += 1;
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return false;
    }
    let mut j = i + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => break,
            _ => j += 1,
        }
    }
    file.source[i + 1..j.min(file.source.len())]
        .trim()
        .is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> ScannedFile {
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .map(str::to_string);
        let kind = if path.contains("/src/") {
            FileKind::Src
        } else {
            FileKind::Tests
        };
        ScannedFile::new(PathBuf::from(path), crate_name, kind, src.to_string())
    }

    fn lint_one(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_files(&[scan(path, src)], &LintConfig::default())
    }

    fn fixture(name: &str) -> &'static str {
        match name {
            "no_unordered_iteration_ok" => include_str!("../fixtures/no_unordered_iteration_ok.rs"),
            "no_unordered_iteration_bad" => {
                include_str!("../fixtures/no_unordered_iteration_bad.rs")
            }
            "no_wall_clock_ok" => include_str!("../fixtures/no_wall_clock_ok.rs"),
            "no_wall_clock_bad" => include_str!("../fixtures/no_wall_clock_bad.rs"),
            "no_unseeded_rng_ok" => include_str!("../fixtures/no_unseeded_rng_ok.rs"),
            "no_unseeded_rng_bad" => include_str!("../fixtures/no_unseeded_rng_bad.rs"),
            "no_panic_in_library_ok" => include_str!("../fixtures/no_panic_in_library_ok.rs"),
            "no_panic_in_library_bad" => include_str!("../fixtures/no_panic_in_library_bad.rs"),
            "float_reduction_ok" => include_str!("../fixtures/float_reduction_ok.rs"),
            "float_reduction_bad" => include_str!("../fixtures/float_reduction_bad.rs"),
            other => panic!("unknown fixture {other}"),
        }
    }

    #[test]
    fn unordered_iteration_fixture_pair() {
        let clean = lint_one(
            "crates/gossip/src/fixture.rs",
            fixture("no_unordered_iteration_ok"),
        );
        assert_eq!(clean, Vec::new(), "ok fixture must lint clean");
        let diags = lint_one(
            "crates/gossip/src/fixture.rs",
            fixture("no_unordered_iteration_bad"),
        );
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "no-unordered-iteration"));
        assert!(diags.iter().all(|d| d.path.ends_with("fixture.rs")));
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![4, 8, 12]
        );
    }

    #[test]
    fn unordered_iteration_ignores_unrestricted_crates() {
        let diags = lint_one(
            "crates/nn/src/fixture.rs",
            fixture("no_unordered_iteration_bad"),
        );
        assert!(diags.is_empty(), "nn is not a restricted crate: {diags:?}");
    }

    #[test]
    fn wall_clock_fixture_pair() {
        let clean = lint_one("crates/core/src/fixture.rs", fixture("no_wall_clock_ok"));
        assert_eq!(clean, Vec::new());
        let diags = lint_one("crates/core/src/fixture.rs", fixture("no_wall_clock_bad"));
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "no-wall-clock"));
        assert_eq!(diags[0].line, 5);
        assert_eq!(diags[1].line, 9);
    }

    #[test]
    fn wall_clock_allowlisted_file_is_exempt() {
        let diags = lint_one(
            "crates/telemetry/src/clock.rs",
            fixture("no_wall_clock_bad"),
        );
        assert!(diags.is_empty(), "{diags:?}");
        // The pre-telemetry allowlist entries no longer get a pass.
        let diags = lint_one("crates/trace/src/phase.rs", fixture("no_wall_clock_bad"));
        assert!(!diags.is_empty(), "stale allowlist entry still exempt");
    }

    #[test]
    fn unseeded_rng_fixture_pair() {
        let clean = lint_one("crates/dist/src/fixture.rs", fixture("no_unseeded_rng_ok"));
        assert_eq!(clean, Vec::new());
        let diags = lint_one("crates/dist/src/fixture.rs", fixture("no_unseeded_rng_bad"));
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "no-unseeded-rng"));
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![5, 9, 13]
        );
    }

    #[test]
    fn unseeded_rng_applies_to_tests_too() {
        let diags = lint_one(
            "crates/dist/tests/fixture.rs",
            fixture("no_unseeded_rng_bad"),
        );
        assert_eq!(diags.len(), 3, "rng rule covers test code: {diags:?}");
    }

    #[test]
    fn panic_fixture_pair() {
        let clean = lint_one(
            "crates/mia/src/fixture.rs",
            fixture("no_panic_in_library_ok"),
        );
        assert_eq!(clean, Vec::new());
        let diags = lint_one(
            "crates/mia/src/fixture.rs",
            fixture("no_panic_in_library_bad"),
        );
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "no-panic-in-library"));
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![4, 9, 14]
        );
        assert!(diags[0].message.contains("unwrap"));
        assert!(diags[1].message.contains("panic"));
        assert!(diags[2].message.contains("expect"));
    }

    #[test]
    fn float_reduction_fixture_pair() {
        // nn is NOT in the no-unordered-iteration restricted set, so the
        // diagnostics below are this rule's alone.
        let clean = lint_one("crates/nn/src/fixture.rs", fixture("float_reduction_ok"));
        assert_eq!(clean, Vec::new(), "ok fixture must lint clean");
        let diags = lint_one("crates/nn/src/fixture.rs", fixture("float_reduction_bad"));
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags
            .iter()
            .all(|d| d.rule == "float-reduction-over-unordered-containers"));
        assert_eq!(
            diags.iter().map(|d| d.line).collect::<Vec<_>>(),
            vec![6, 10, 14]
        );
        assert!(diags[0].message.contains("sum"));
        assert!(diags[1].message.contains("product"));
        assert!(diags[2].message.contains("fold"));
        assert!(diags[0].message.contains("HashMap"));
        assert!(diags[1].message.contains("HashSet"));
    }

    #[test]
    fn float_reduction_applies_on_top_of_restricted_crates() {
        // In a restricted crate the same source also trips the container
        // ban; both rules report, each at its own line.
        let diags = lint_one(
            "crates/gossip/src/fixture.rs",
            fixture("float_reduction_bad"),
        );
        assert!(diags
            .iter()
            .any(|d| d.rule == "float-reduction-over-unordered-containers"));
        assert!(diags.iter().any(|d| d.rule == "no-unordered-iteration"));
    }

    #[test]
    fn float_reduction_skips_test_and_bench_files() {
        let diags = lint_one("crates/nn/tests/fixture.rs", fixture("float_reduction_bad"));
        assert!(
            diags.is_empty(),
            "rule covers library sources only: {diags:?}"
        );
    }

    #[test]
    fn float_reduction_allow_suppresses_with_reason() {
        let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u8, f64>) -> f64 {\n    // lint:allow(float-reduction-over-unordered-containers, \"sum feeds an order-insensitive count\")\n    m.values().sum::<f64>()\n}\n";
        assert!(lint_one("crates/nn/src/f.rs", src).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_and_without_reports() {
        let src = "fn f() {\n    let t = std::time::Instant::now(); // lint:allow(no-wall-clock, \"bench timing\")\n}\n";
        assert!(lint_one("crates/core/src/f.rs", src).is_empty());
        let src =
            "fn f() {\n    let t = std::time::Instant::now(); // lint:allow(no-wall-clock)\n}\n";
        let diags = lint_one("crates/core/src/f.rs", src);
        assert_eq!(diags.len(), 2, "{diags:?}"); // the finding + the malformed allow
        assert!(diags.iter().any(|d| d.rule == "malformed-allow"));
        assert!(diags.iter().any(|d| d.rule == "no-wall-clock"));
    }

    #[test]
    fn allow_naming_unknown_rule_is_reported() {
        let diags = lint_one(
            "crates/core/src/f.rs",
            "// lint:allow(no-such-rule, \"oops\")\nfn f() {}\n",
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "malformed-allow");
        assert!(diags[0].message.contains("no-such-rule"));
    }

    #[test]
    fn tokens_inside_strings_and_comments_do_not_fire() {
        let src = "fn f() -> &'static str {\n    // thread_rng() would be bad\n    \"rand::random HashMap Instant::now\"\n}\n";
        assert!(lint_one("crates/gossip/src/f.rs", src).is_empty());
    }

    #[test]
    fn diagnostics_are_sorted_and_display_cleanly() {
        let diags = lint_one(
            "crates/gossip/src/fixture.rs",
            fixture("no_unordered_iteration_bad"),
        );
        let mut sorted = diags.clone();
        sorted.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        assert_eq!(diags, sorted);
        let rendered = diags[0].to_string();
        assert!(rendered.starts_with("error[no-unordered-iteration]"));
        assert!(rendered.contains("fixture.rs:4"));
    }
}

//! A token-level lexer for Rust source.
//!
//! The first lint engine matched patterns against a *masked* copy of each
//! file — comments and literals blanked to spaces. That was enough for
//! identifier rules but made token-adjacency queries ("is this `schema`
//! followed by `:` and an integer literal?") fragile. The v2 engine lexes
//! every file into a real token stream with byte spans, and rules match
//! tokens. The lexer is still dependency-free (no `proc-macro2`/`syn`):
//! the workspace must build with no registry access.
//!
//! Coverage is the full lexical surface the rules can encounter:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), with doc flavors distinguished;
//! * string literals with escapes, byte strings (`b"…"`), and raw /
//!   raw-byte strings with any number of `#` delimiters (`r#"…"#`,
//!   `br##"…"##`);
//! * char literals vs lifetimes — `'a'` is a char, `'a` is a lifetime,
//!   `'\''`, `'"'` and `'/'` are chars (the `"`/`//` bytes inside them
//!   must not open a string or comment);
//! * numeric literals (decimal, `0x`/`0o`/`0b`, underscores, floats,
//!   exponents, type suffixes) — kept as single tokens so `1.0` never
//!   reads as a method call on `1`;
//! * identifiers/keywords (`r#raw` identifiers included) and one-byte
//!   punctuation tokens.
//!
//! Unterminated literals or comments do not panic: the token is closed at
//! end of input, matching how the old scanner degraded.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including `r#ident` raw identifiers).
    Ident,
    /// A lifetime such as `'a` (no closing quote).
    Lifetime,
    /// A char literal such as `'x'` or `'\n'`.
    Char,
    /// A string (`"…"`) or byte-string (`b"…"`) literal.
    Str,
    /// A raw or raw-byte string literal (`r"…"`, `r#"…"#`, `br##"…"##`).
    RawStr,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A float literal (`1.0`, `2e-3`, `1.5f32`).
    Float,
    /// A `//` comment; `doc` marks `///` and `//!` flavors.
    LineComment {
        /// Whether this is a doc comment.
        doc: bool,
    },
    /// A (possibly nested) `/* … */` comment.
    BlockComment,
    /// A single punctuation byte (`.`, `:`, `!`, `{`, …).
    Punct,
}

impl TokenKind {
    /// Whether the token is a comment of either flavor.
    #[must_use]
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment { .. } | TokenKind::BlockComment
        )
    }

    /// Whether the token is a string/char-like literal whose contents the
    /// rules must never match against.
    #[must_use]
    pub fn is_text_literal(self) -> bool {
        matches!(self, TokenKind::Char | TokenKind::Str | TokenKind::RawStr)
    }
}

/// One lexed token: kind plus its byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: usize,
}

impl Token {
    /// The token's text within `source`.
    #[must_use]
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }
}

/// Lexes `source` into a complete token stream (whitespace dropped,
/// comments kept — the allow-comment parser needs them).
#[must_use]
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        source,
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'s> {
    source: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            let next = self.bytes.get(self.pos + 1).copied();
            match b {
                b'/' if next == Some(b'/') => self.line_comment(),
                b'/' if next == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.pos),
                b'\'' => self.quote(),
                b'b' if next == Some(b'"') => self.string(self.pos + 1),
                _ if self.raw_string_hashes().is_some() => self.raw_string(),
                _ if b == b'r' && next == Some(b'#') && self.is_raw_ident() => self.ident(),
                _ if is_ident_start(b) => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ if b.is_ascii_whitespace() => {
                    if b == b'\n' {
                        self.line += 1;
                    }
                    self.pos += 1;
                }
                _ => {
                    let start = self.pos;
                    // One token per byte; multi-byte UTF-8 punctuation is
                    // consumed whole so spans stay on char boundaries.
                    let len = utf8_len(b);
                    self.pos += len;
                    self.push(TokenKind::Punct, start);
                }
            }
        }
        self.tokens
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        let line = self.line;
        // `line` tracks the *current* position; walk back over any
        // newlines inside the token so the recorded line is the start's.
        let newlines_inside = self.bytes[start..self.pos]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line: line - newlines_inside,
        });
    }

    fn advance_counting_lines(&mut self, to: usize) {
        for &b in &self.bytes[self.pos..to] {
            if b == b'\n' {
                self.line += 1;
            }
        }
        self.pos = to;
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let end = self.source[start..]
            .find('\n')
            .map_or(self.bytes.len(), |n| start + n);
        let doc = matches!(self.bytes.get(start + 2), Some(&b'/') | Some(&b'!'))
            // `////…` separator lines are plain comments, not docs.
            && self.bytes.get(start + 3) != Some(&b'/');
        self.pos = end;
        self.push(TokenKind::LineComment { doc }, start);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let mut depth = 1usize;
        let mut j = start + 2;
        while j < self.bytes.len() && depth > 0 {
            if self.bytes[j] == b'/' && self.bytes.get(j + 1) == Some(&b'*') {
                depth += 1;
                j += 2;
            } else if self.bytes[j] == b'*' && self.bytes.get(j + 1) == Some(&b'/') {
                depth -= 1;
                j += 2;
            } else {
                j += 1;
            }
        }
        self.advance_counting_lines(j);
        self.push(TokenKind::BlockComment, start);
    }

    /// Lexes a plain/byte string whose opening quote sits at `quote`.
    /// (`self.pos` may be one before, on the `b` prefix.)
    fn string(&mut self, quote: usize) {
        let start = self.pos;
        let mut j = quote + 1;
        while j < self.bytes.len() {
            match self.bytes[j] {
                b'\\' => j += 2,
                b'"' => {
                    j += 1;
                    break;
                }
                _ => j += 1,
            }
        }
        self.advance_counting_lines(j.min(self.bytes.len()));
        self.push(TokenKind::Str, start);
    }

    /// `Some(hash_count)` when a raw (or raw-byte) string starts at
    /// `self.pos`.
    fn raw_string_hashes(&self) -> Option<usize> {
        let rest = &self.bytes[self.pos..];
        let after_prefix = match rest {
            [b'b', b'r', ..] => &rest[2..],
            [b'r', ..] => &rest[1..],
            _ => return None,
        };
        if self.pos > 0 && is_ident_byte(self.bytes[self.pos - 1]) {
            return None; // the `r` is the tail of a longer identifier
        }
        let hashes = after_prefix.iter().take_while(|&&b| b == b'#').count();
        (after_prefix.get(hashes) == Some(&b'"')).then_some(hashes)
    }

    fn raw_string(&mut self) {
        let start = self.pos;
        let hashes = self
            .raw_string_hashes()
            .expect("caller checked raw_string_hashes");
        let mut j = self.pos;
        if self.bytes[j] == b'b' {
            j += 1;
        }
        j += 1 + hashes + 1; // `r`, hashes, opening quote
        while j < self.bytes.len() {
            if self.bytes[j] == b'"'
                && self.bytes[j + 1..].len() >= hashes
                && self.bytes[j + 1..j + 1 + hashes].iter().all(|&b| b == b'#')
            {
                j += 1 + hashes;
                break;
            }
            j += 1;
        }
        self.advance_counting_lines(j.min(self.bytes.len()));
        self.push(TokenKind::RawStr, start);
    }

    /// Whether `self.pos` starts an `r#ident` raw identifier (as opposed
    /// to an `r#"…"#` raw string, which the caller has already excluded).
    fn is_raw_ident(&self) -> bool {
        self.bytes
            .get(self.pos + 2)
            .copied()
            .is_some_and(is_ident_start)
    }

    /// Disambiguates `'` between char literals and lifetimes.
    fn quote(&mut self) {
        let start = self.pos;
        match self.bytes.get(start + 1) {
            // `'\…'`: escaped char literal (covers `'\''`, `'\n'`, `'\\'`,
            // `'\x41'`, `'\u{1F600}'`). Consume the escape designator, then
            // the closing quote; a malformed escape just ends the token
            // early rather than swallowing the rest of the line.
            Some(b'\\') => {
                let mut j = start + 2; // first byte after the backslash
                match self.bytes.get(j) {
                    Some(b'u') if self.bytes.get(j + 1) == Some(&b'{') => {
                        j += 2;
                        while j < self.bytes.len()
                            && self.bytes[j] != b'}'
                            && self.bytes[j] != b'\n'
                        {
                            j += 1;
                        }
                        if self.bytes.get(j) == Some(&b'}') {
                            j += 1;
                        }
                    }
                    Some(b'x') => j += 3, // \xNN
                    Some(_) => j += 1,    // \n, \t, \', \\, \", \0, …
                    None => {}
                }
                if self.bytes.get(j) == Some(&b'\'') {
                    j += 1;
                }
                self.pos = j.min(self.bytes.len());
                self.push(TokenKind::Char, start);
            }
            // `''` can't start a char; treat the quote as punctuation.
            Some(b'\'') | None => {
                self.pos = start + 1;
                self.push(TokenKind::Punct, start);
            }
            Some(&c) => {
                // `'x'` (one scalar then a closing quote) is a char — this
                // is where `'"'` and `'/'` matter: the inner byte must not
                // open a string or comment. Anything else (`'a`, `'static`)
                // is a lifetime: quote plus the identifier run.
                let scalar_len = utf8_len(c);
                let close = start + 1 + scalar_len;
                if self.bytes.get(close) == Some(&b'\'') {
                    self.pos = close + 1;
                    self.push(TokenKind::Char, start);
                } else {
                    let mut j = start + 1;
                    while j < self.bytes.len() && is_ident_byte(self.bytes[j]) {
                        j += 1;
                    }
                    self.pos = j.max(start + 1);
                    self.push(TokenKind::Lifetime, start);
                }
            }
        }
    }

    fn ident(&mut self) {
        let start = self.pos;
        if self.bytes[start] == b'r' && self.bytes.get(start + 1) == Some(&b'#') {
            self.pos = start + 2;
        }
        while self.pos < self.bytes.len() && is_ident_byte(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start);
    }

    /// Lexes a numeric literal. `1.0` stays one `Float` token; `1.` is
    /// left as `Int` + `.` (matching rustc, where `1.method()` parses);
    /// exponents and type suffixes are folded in.
    fn number(&mut self) {
        let start = self.pos;
        let mut j = start;
        let radix_prefix = matches!(
            (self.bytes.get(j), self.bytes.get(j + 1)),
            (Some(b'0'), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'))
        );
        if radix_prefix {
            j += 2;
            while j < self.bytes.len()
                && (self.bytes[j].is_ascii_alphanumeric() || self.bytes[j] == b'_')
            {
                j += 1;
            }
            self.pos = j;
            self.push(TokenKind::Int, start);
            return;
        }
        let mut float = false;
        while j < self.bytes.len() && (self.bytes[j].is_ascii_digit() || self.bytes[j] == b'_') {
            j += 1;
        }
        // Fractional part: a dot followed by a digit (so `1..2` ranges and
        // `1.max(2)` method calls stay integer-plus-punct).
        if self.bytes.get(j) == Some(&b'.') && self.bytes.get(j + 1).is_some_and(u8::is_ascii_digit)
        {
            float = true;
            j += 1;
            while j < self.bytes.len() && (self.bytes[j].is_ascii_digit() || self.bytes[j] == b'_')
            {
                j += 1;
            }
        }
        // Exponent.
        if matches!(self.bytes.get(j), Some(b'e' | b'E')) {
            let mut k = j + 1;
            if matches!(self.bytes.get(k), Some(b'+' | b'-')) {
                k += 1;
            }
            if self.bytes.get(k).is_some_and(u8::is_ascii_digit) {
                float = true;
                j = k;
                while j < self.bytes.len()
                    && (self.bytes[j].is_ascii_digit() || self.bytes[j] == b'_')
                {
                    j += 1;
                }
            }
        }
        // Type suffix (`u64`, `f32`, …).
        if self.bytes.get(j).copied().is_some_and(is_ident_start) {
            let suffix_start = j;
            while j < self.bytes.len() && is_ident_byte(self.bytes[j]) {
                j += 1;
            }
            if self.source[suffix_start..j].starts_with('f') {
                float = true;
            }
        }
        self.pos = j;
        self.push(
            if float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
            start,
        );
    }
}

/// Rebuilds the masked view of `source` from its token stream: comments
/// and string/char literals are blanked to spaces byte-for-byte (newlines
/// kept), everything else is copied through. Statement-span heuristics
/// (the float-accumulation rule) and `#[cfg(test)]` bracket matching still
/// run on this view; offsets and line numbers match the original exactly.
#[must_use]
pub fn mask(source: &str, tokens: &[Token]) -> String {
    let mut out = source.as_bytes().to_vec();
    for token in tokens {
        if token.kind.is_comment() || token.kind.is_text_literal() {
            for b in &mut out[token.start..token.end] {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        }
    }
    // Only ASCII bytes were replaced with ASCII spaces inside spans that
    // lie on char boundaries, so the result is valid UTF-8.
    String::from_utf8(out).unwrap_or_else(|_| source.to_string())
}

pub(crate) fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Length in bytes of the UTF-8 scalar starting with `b`.
fn utf8_len(b: u8) -> usize {
    match b {
        _ if b < 0x80 => 1,
        _ if b < 0xE0 => 2,
        _ if b < 0xF0 => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn texts_of(src: &str, kind: TokenKind) -> Vec<String> {
        lex(src)
            .iter()
            .filter(|t| t.kind == kind)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("let x2 = 41 + 1.5f32;");
        assert!(toks.contains(&(TokenKind::Ident, "let".into())));
        assert!(toks.contains(&(TokenKind::Ident, "x2".into())));
        assert!(toks.contains(&(TokenKind::Int, "41".into())));
        assert!(toks.contains(&(TokenKind::Float, "1.5f32".into())));
        assert!(toks.contains(&(TokenKind::Punct, ";".into())));
    }

    #[test]
    fn numeric_shapes() {
        assert_eq!(
            texts_of("0xFF_u8 0b1010 1_000_000u64", TokenKind::Int).len(),
            3
        );
        assert_eq!(
            texts_of("1.0 2e-3 4E+2 7f64 1_0.5", TokenKind::Float).len(),
            5
        );
        // `1..2` is Int, `..`, Int — the dot must not glue to the 1.
        let toks = kinds("1..2");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Int, "1".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Int, "2".into()),
            ]
        );
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let src = "/* outer /* inner HashMap */ tail */ fn g() {}";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.contains("inner HashMap"));
        assert!(toks.contains(&(TokenKind::Ident, "fn".into())));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"quoted "inside" thread_rng"#; let t = br##"x"# still"##;"####;
        let raws = texts_of(src, TokenKind::RawStr);
        assert_eq!(raws.len(), 2, "{raws:?}");
        assert!(raws[0].contains("thread_rng"));
        assert!(raws[1].contains("still"));
        // Nothing inside the raw strings leaked out as identifiers.
        let idents = texts_of(src, TokenKind::Ident);
        assert!(!idents.iter().any(|i| i == "thread_rng"));
    }

    #[test]
    fn char_literals_containing_quote_and_slashes() {
        // `'"'` must not open a string; `'/'` twice must not open a comment.
        let src = "let a = '\"'; let b = '/'; let c = '/'; let d = \"live\";";
        let chars = texts_of(src, TokenKind::Char);
        assert_eq!(chars, vec!["'\"'", "'/'", "'/'"]);
        assert_eq!(texts_of(src, TokenKind::Str), vec!["\"live\""]);
    }

    #[test]
    fn escaped_char_literals() {
        let src = r"let a = '\''; let b = '\\'; let c = '\n'; let d = '\u{1F600}';";
        assert_eq!(texts_of(src, TokenKind::Char).len(), 4);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str, s: &'static str) -> char { let c = 'x'; c }";
        assert_eq!(
            texts_of(src, TokenKind::Lifetime),
            vec!["'a", "'a", "'static"]
        );
        assert_eq!(texts_of(src, TokenKind::Char), vec!["'x'"]);
    }

    #[test]
    fn unicode_char_literal_vs_lifetime() {
        let src = "let heart = '❤'; let l: &'aé u8 = &0;";
        assert_eq!(texts_of(src, TokenKind::Char), vec!["'❤'"]);
        assert_eq!(texts_of(src, TokenKind::Lifetime), vec!["'aé"]);
    }

    #[test]
    fn byte_strings_and_escapes() {
        let src = r#"let a = b"bytes"; let b = "esc \" still string HashMap"; let c = 1;"#;
        let strs = texts_of(src, TokenKind::Str);
        assert_eq!(strs.len(), 2);
        assert!(strs[1].contains("HashMap"));
        assert!(!texts_of(src, TokenKind::Ident)
            .iter()
            .any(|i| i == "HashMap"));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let src = "let r#type = 1; let r = 2;";
        let idents = texts_of(src, TokenKind::Ident);
        assert!(idents.iter().any(|i| i == "r#type"));
    }

    #[test]
    fn doc_comments_are_flagged() {
        let src = "/// doc\n//! inner\n// plain\n//// separator\nfn f() {}\n";
        let doc_flags: Vec<bool> = lex(src)
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::LineComment { doc } => Some(doc),
                _ => None,
            })
            .collect();
        assert_eq!(doc_flags, vec![true, true, false, false]);
    }

    #[test]
    fn token_lines_are_one_based_and_start_of_token() {
        let src = "fn a() {}\nlet s = \"multi\nline\";\nfn b() {}\n";
        let toks = lex(src);
        let b_tok = toks
            .iter()
            .find(|t| t.text(src) == "b")
            .expect("ident b is lexed");
        assert_eq!(b_tok.line, 4);
        let s_tok = toks
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("string is lexed");
        assert_eq!(s_tok.line, 2);
    }

    #[test]
    fn every_byte_is_covered_or_whitespace() {
        let src = "fn f<'a>(x: &'a str) { let c = '\\''; let s = r#\"x\"#; /* c */ }\n";
        let toks = lex(src);
        let mut covered = vec![false; src.len()];
        for t in &toks {
            for slot in &mut covered[t.start..t.end] {
                *slot = true;
            }
        }
        for (i, b) in src.bytes().enumerate() {
            assert!(
                covered[i] || b.is_ascii_whitespace(),
                "byte {i} ({:?}) uncovered",
                b as char
            );
        }
    }

    #[test]
    fn mask_blanks_comments_and_literals_only() {
        let src = "let a = \"thread_rng\"; // Instant::now\nlet b = HashMap::new();\n";
        let toks = lex(src);
        let masked = mask(src, &toks);
        assert_eq!(masked.len(), src.len());
        assert!(!masked.contains("thread_rng"));
        assert!(!masked.contains("Instant::now"));
        assert!(masked.contains("HashMap"));
        assert_eq!(
            src.matches('\n').count(),
            masked.matches('\n').count(),
            "newlines must survive masking"
        );
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in [
            "let s = \"open",
            "let s = r#\"open",
            "/* open",
            "let c = '\\",
            "b\"open",
        ] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "{src:?} lexed to nothing");
            let _ = mask(src, &toks);
        }
    }
}

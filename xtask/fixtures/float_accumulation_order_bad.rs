//! Bad: float reductions fed by sources with no pinned order. Each one
//! re-rounds differently per process (hash order, directory order)
//! because float addition is not associative.
use std::collections::{HashMap, HashSet};

pub fn total(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum::<f64>()
}

pub fn scale(levels: &HashSet<u64>) -> f32 {
    levels.iter().map(|&v| 1.0 + v as f32).product::<f32>()
}

pub fn fold_weights(m: &HashMap<u32, f64>) -> f64 {
    m.values().fold(0.0, |acc, v| acc + v)
}

/// Directory iteration order is filesystem-dependent.
pub fn disk_total(dir: &std::path::Path) -> f64 {
    std::fs::read_dir(dir).into_iter().flatten().flatten().map(|e| e.metadata().map(|m| m.len() as f64).unwrap_or(0.0)).sum::<f64>()
}

//! Fixture: schema versions referencing the central consts (ok).

pub const SCHEMA_VERSION: u32 = 2;

pub struct Header { pub schema: u32 }

pub fn header() -> Header {
    Header { schema: SCHEMA_VERSION }
}

pub fn check(h: &Header) -> bool {
    h.schema == SCHEMA_VERSION && h.schema >= SCHEMA_VERSION
}

/// Module paths named `schema` are not version declarations.
pub fn module_path() -> u32 {
    schema::CURRENT
}

mod schema { pub const CURRENT: u32 = 2; }

//! Bad: float reductions fed by hash-order iteration. Each one re-rounds
//! differently per process because float addition is not associative.
use std::collections::{HashMap, HashSet};

pub fn total(weights: &HashMap<usize, f64>) -> f64 {
    weights.values().sum::<f64>()
}

pub fn scale(levels: &HashSet<u32>) -> f32 {
    levels.iter().map(|&v| 1.0 + v as f32).product::<f32>()
}

pub fn accumulate(map: &HashMap<usize, f32>) -> f32 {
    map.values().fold(0.0, |acc, v| acc + v)
}

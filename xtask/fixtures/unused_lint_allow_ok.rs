//! Fixture: escape hatches that earn their keep (ok).

/// Standalone form covers the next line.
pub fn stamp() -> std::time::Instant {
    // lint:allow(no-wall-clock, "progress display only, never traced")
    std::time::Instant::now()
}

/// Trailing form covers its own line.
pub fn entropy() -> u64 {
    rand::thread_rng().gen() // lint:allow(no-unseeded-rng, "fixture demonstrates the trailing form")
}

//! Fixture: unaudited orderings on a hot path (bad).

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

pub fn read(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

pub fn fence_everything(c: &AtomicU64) -> u64 {
    c.fetch_add(1, Ordering::SeqCst)
}

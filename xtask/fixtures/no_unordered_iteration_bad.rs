//! Fixture: hash collections in a determinism-critical crate (bad).

pub fn build() -> Vec<usize> {
    let map = std::collections::HashMap::<usize, f32>::new();
    let mut out: Vec<usize> = map.keys().copied().collect();
    out.sort_unstable();
    let mut seen = Vec::new();
    let set = std::collections::HashSet::<usize>::new();
    for k in &set {
        seen.push(*k);
    }
    let other: std::collections::HashMap<String, u64> = Default::default();
    let _ = (seen, other);
    out
}

//! Fixture: banned names hidden where only a real lexer can see they are
//! inert — nested block comments, raw strings with `#` delimiters, char
//! literals holding `"` and `/`, and lifetimes that look like chars (ok).

/* nested /* thread_rng() inside a nested block comment */ still commented */

/// Doc examples are comments too: `rand::random::<f64>()`.
pub fn tricky() -> String {
    let quote = '"';
    let slash = '/';
    let url = "https://example.invalid/not-a-comment";
    let raw = r#"thread_rng() and "quoted" OsRng"#;
    let deeper = r##"from_entropy() with a # and "# inside"##;
    let lifetime: &'static str = raw;
    format!("{quote}{slash}{url}{lifetime}{deeper}")
}

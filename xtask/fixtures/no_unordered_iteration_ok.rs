//! Fixture: ordered collections only (ok).

pub fn build() -> Vec<usize> {
    let map = std::collections::BTreeMap::<usize, f32>::new();
    let mut out: Vec<usize> = map.keys().copied().collect();
    let set = std::collections::BTreeSet::<usize>::new();
    out.extend(set.iter().copied());
    out
}

//! Fixture: justified expects and test-only unwraps (ok).

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().expect("caller guarantees xs is non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn head_works() {
        assert_eq!(super::head(&[1]), 1);
        let v: Result<u32, ()> = Ok(3);
        assert_eq!(v.unwrap(), 3);
    }
}

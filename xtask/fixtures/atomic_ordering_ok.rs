//! Fixture: audited orderings (ok when scanned as an allowlisted
//! instrument file).

use std::sync::atomic::{AtomicU64, Ordering};

/// Commutative counter bump: Relaxed is sound here and the file is in the
/// `relaxed-files` allowlist backed by a loom model.
pub fn bump(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// Acquire/Release edges are always acceptable.
pub fn read(c: &AtomicU64) -> u64 {
    c.load(Ordering::Acquire)
}

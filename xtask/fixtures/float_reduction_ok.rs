//! Ok: reductions that stay deterministic. Integer sums are exact in any
//! order; ordered containers iterate the same way every run; and the
//! sanctioned float pattern projects into a Vec and sorts before reducing.
use std::collections::{BTreeMap, HashMap};

pub fn count(map: &HashMap<usize, u64>) -> u64 {
    map.values().sum::<u64>()
}

pub fn ordered_total(map: &BTreeMap<usize, f64>) -> f64 {
    map.values().sum::<f64>()
}

pub fn sorted_total(map: &HashMap<usize, f64>) -> f64 {
    let mut entries: Vec<(usize, f64)> = map.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_by_key(|&(k, _)| k);
    entries.into_iter().map(|(_, v)| v).sum::<f64>()
}

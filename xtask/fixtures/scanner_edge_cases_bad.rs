//! Fixture: real banned calls surrounded by the same tricky syntax the
//! ok twin uses as camouflage (bad).

pub fn tricky() -> u64 {
    let decoy = r#"thread_rng() in a raw string is inert"#;
    let real = rand::thread_rng().gen::<u64>();
    let quote = '"';
    let x: f64 = rand::random();
    let lifetime: &'static str = decoy;
    let e = rand::rngs::StdRng::from_entropy().gen::<u64>();
    let _ = (quote, lifetime, x);
    real ^ e
}

//! Fixture: panicking library code (bad).

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn checked(flag: bool) {
    if !flag {
        panic!("flag must be set");
    }
}

pub fn last(xs: &[u32]) -> u32 {
    *xs.last().expect("")
}

//! Fixture: wall-clock reads outside the allowlist (bad).

/// Reads the monotonic clock.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

//! Fixture: stale escape hatches (bad). Each allow excused a hazard that
//! has since been fixed, so it now suppresses nothing.

/// The clock read this excused moved to the telemetry shim long ago.
pub fn stamp() -> u64 {
    // lint:allow(no-wall-clock, "timing the gossip round")
    glmia_telemetry::clock::monotonic_micros()
}

pub fn mix(seed: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) // lint:allow(no-unseeded-rng, "splitmix is seeded")
}

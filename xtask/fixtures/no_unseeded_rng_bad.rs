//! Fixture: OS-entropy randomness (bad).

/// Draws from the thread-local RNG.
pub fn draw() -> u64 {
    let mut rng = rand::thread_rng();
    let x: u64 = rng.gen();
    x
}
pub fn quick() -> f64 { rand::random::<f64>() }

/// Entropy-seeded generator.
pub fn entropy() -> rand::rngs::StdRng {
    rand::rngs::StdRng::from_entropy()
}

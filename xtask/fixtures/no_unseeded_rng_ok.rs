//! Fixture: seed-derived randomness only (ok).

use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

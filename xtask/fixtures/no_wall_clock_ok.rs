//! Fixture: no wall-clock reads, or justified ones (ok).

pub fn timed() -> u64 {
    // lint:allow(no-wall-clock, "operator-facing wall timing only")
    let start = std::time::Instant::now();
    start.elapsed().as_millis() as u64
}

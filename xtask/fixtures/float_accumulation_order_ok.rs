//! Ok: reductions whose accumulation order is pinned (or exact). Integer
//! sums are exact in any order; a sorted projection pins float order; the
//! CSR sorted-row invariant pins it within a single expression; and a
//! deliberate order-insensitive reduction documents itself.
use std::collections::HashMap;

/// Sorted projection first: accumulation order is pinned.
pub fn total(m: &HashMap<u32, f64>) -> f64 {
    let mut vals: Vec<f64> = m.values().copied().collect();
    vals.sort_unstable_by(f64::total_cmp);
    vals.iter().sum::<f64>()
}

/// The CSR constructor's sorted-row invariant pins row order even though
/// the reduction itself runs over an unordered parallel iterator.
pub fn csr_norm(w: &[(u32, f64)]) -> f64 {
    Csr::from_sorted_rows(w).values().par_iter().map(|v| v * 0.5).sum::<f64>()
}

/// Integer accumulation is exact in any order.
pub fn count(m: &HashMap<u32, u64>) -> u64 {
    m.values().sum::<u64>()
}

/// A deliberate order-insensitive reduction, excused with a reason.
pub fn rough_mean(m: &HashMap<u32, f64>) -> f64 {
    // lint:allow(float-accumulation-order, "mean feeds the progress display only, never a trace")
    m.values().sum::<f64>() / m.len() as f64
}

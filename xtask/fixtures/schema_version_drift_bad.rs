//! Fixture: hardcoded schema versions (bad).

pub struct Header { pub schema: u32 }

/// Writes a trace header.
pub fn header() -> Header {
    Header {
        // Hardcoded: keeps compiling when the central const moves on.
        schema: 2,
    }
}

pub fn check(h: &Header) -> bool {
    h.schema == 2
}

pub fn reversed(h: &Header) -> bool {
    // A literal on the left is drift all the same.
    3 != h.schema
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip() {
        assert_eq!(super::header().schema, 2);
    }
}

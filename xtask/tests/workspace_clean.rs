//! Workspace-level acceptance test: the current tree lints clean.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    if let Some(dir) = option_env!("CARGO_MANIFEST_DIR") {
        if let Some(parent) = PathBuf::from(dir).parent() {
            return parent.to_path_buf();
        }
    }
    // Fallback when built outside cargo: walk up to the lint.toml.
    let mut dir = std::env::current_dir().expect("current directory is readable");
    loop {
        if dir.join("lint.toml").is_file() {
            return dir;
        }
        assert!(dir.pop(), "workspace root (lint.toml) not found above cwd");
    }
}

#[test]
fn cargo_xtask_lint_is_clean_on_the_current_tree() {
    let root = workspace_root();
    let diags = xtask::lint_root(&root, None).expect("workspace scans and lint.toml parses");
    assert!(
        diags.is_empty(),
        "`cargo xtask lint` must exit 0 on the committed tree; findings:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! SARIF 2.1.0 conformance: the `--format sarif` document must satisfy
//! the schema's required-property set, so GitHub code scanning accepts
//! the upload.
//!
//! The linter is dependency-free (no network, no `jsonschema` crate), so
//! the check encodes the SARIF 2.1.0 schema constraints that matter for
//! a static-analysis log directly: required top-level members and their
//! types, required `run`/`tool`/`driver`/`reportingDescriptor` members,
//! and for each `result` the `message` object plus physical locations
//! with 1-based `startLine`s. The document is exercised twice — once for
//! the (clean) committed workspace, once for a synthetic finding set —
//! so both the empty and populated `results` shapes are covered.

use std::path::PathBuf;

use xtask::json::{self, Value};
use xtask::output::{render, Format};
use xtask::rules::{Diagnostic, RULES};

fn workspace_root() -> PathBuf {
    if let Some(dir) = option_env!("CARGO_MANIFEST_DIR") {
        if let Some(parent) = PathBuf::from(dir).parent() {
            return parent.to_path_buf();
        }
    }
    let mut dir = std::env::current_dir().expect("current directory is readable");
    loop {
        if dir.join("lint.toml").is_file() {
            return dir;
        }
        assert!(dir.pop(), "workspace root (lint.toml) not found above cwd");
    }
}

/// Asserts the SARIF 2.1.0 required-property constraints on `doc`.
fn assert_sarif_2_1_0(doc: &Value) {
    // sarifLog: `version` is required and must be the literal "2.1.0".
    assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
    assert!(doc
        .get("$schema")
        .and_then(Value::as_str)
        .is_some_and(|s| s.contains("sarif-schema-2.1.0")));
    // sarifLog: `runs` is required, an array of run objects.
    let runs = doc
        .get("runs")
        .and_then(Value::as_array)
        .expect("runs is a required array");
    assert!(!runs.is_empty());
    for run in runs {
        // run: `tool` is required; tool: `driver` is required;
        // toolComponent: `name` is required.
        let driver = run
            .get("tool")
            .and_then(|t| t.get("driver"))
            .expect("tool.driver is required");
        assert!(driver
            .get("name")
            .and_then(Value::as_str)
            .is_some_and(|n| !n.is_empty()));
        // reportingDescriptor: `id` is required; ours also carry a
        // shortDescription with required `text`.
        let rules = driver
            .get("rules")
            .and_then(Value::as_array)
            .expect("driver.rules is an array");
        assert_eq!(rules.len(), RULES.len(), "one descriptor per rule");
        for rule in rules {
            assert!(rule
                .get("id")
                .and_then(Value::as_str)
                .is_some_and(|id| !id.is_empty()));
            assert!(rule
                .get("shortDescription")
                .and_then(|d| d.get("text"))
                .and_then(Value::as_str)
                .is_some_and(|t| !t.is_empty()));
        }
        // run: `results` must be an array when present; result: `message`
        // is the only required member, and our physical locations must be
        // well-formed (uri set, startLine >= 1).
        let results = run
            .get("results")
            .and_then(Value::as_array)
            .expect("results is an array");
        for result in results {
            assert!(result
                .get("message")
                .and_then(|m| m.get("text"))
                .and_then(Value::as_str)
                .is_some());
            let rule_id = result
                .get("ruleId")
                .and_then(Value::as_str)
                .expect("ruleId set");
            let idx = result
                .get("ruleIndex")
                .and_then(Value::as_f64)
                .expect("ruleIndex set") as usize;
            assert_eq!(
                rules[idx].get("id").and_then(Value::as_str),
                Some(rule_id),
                "ruleIndex must point at the ruleId's descriptor"
            );
            for loc in result
                .get("locations")
                .and_then(Value::as_array)
                .expect("locations is an array")
            {
                let phys = loc
                    .get("physicalLocation")
                    .expect("physicalLocation present");
                let uri = phys
                    .get("artifactLocation")
                    .and_then(|a| a.get("uri"))
                    .and_then(Value::as_str)
                    .expect("artifactLocation.uri present");
                assert!(!uri.starts_with('/'), "uri must be relative: {uri}");
                assert!(!uri.contains('\\'), "uri must be /-separated: {uri}");
                let line = phys
                    .get("region")
                    .and_then(|r| r.get("startLine"))
                    .and_then(Value::as_f64)
                    .expect("region.startLine present");
                assert!(line >= 1.0, "startLine is 1-based");
            }
        }
    }
}

#[test]
fn workspace_sarif_output_conforms_to_2_1_0() {
    let root = workspace_root();
    let diags = xtask::lint_root(&root, None).expect("workspace scans");
    let doc = json::parse(&render(&diags, Format::Sarif)).expect("SARIF output is valid JSON");
    assert_sarif_2_1_0(&doc);
}

#[test]
fn populated_sarif_output_conforms_to_2_1_0() {
    let diags: Vec<Diagnostic> = RULES
        .iter()
        .enumerate()
        .map(|(i, rule)| Diagnostic {
            rule: rule.name,
            path: PathBuf::from("crates/demo/src/lib.rs"),
            line: i + 1,
            message: format!(
                "synthetic {} finding with \"quotes\"\nand newline",
                rule.name
            ),
            snippet: "let x = 1;".to_string(),
        })
        .collect();
    let doc = json::parse(&render(&diags, Format::Sarif)).expect("SARIF output is valid JSON");
    assert_sarif_2_1_0(&doc);
    let results = doc.get("runs").and_then(Value::as_array).unwrap()[0]
        .get("results")
        .and_then(Value::as_array)
        .unwrap();
    assert_eq!(results.len(), RULES.len());
}

//! Offline API-compatible stand-in for `serde` (subset).
//!
//! Registry access is unavailable in local dev containers, so this stub
//! implements the subset of serde the workspace uses through a simplified
//! value-tree data model: `Serialize` lowers to [`__Value`], `Deserialize`
//! lifts from it, and the derive macros in the sibling `serde_derive` stub
//! generate those impls directly (no `Serializer`/`Deserializer` visitors).
//! `serde_json` (stubbed next door) prints/parses that value tree with
//! serde_json-compatible formatting.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Simplified JSON-like value tree (the stub's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum __Value {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<__Value>),
    /// JSON object (insertion-ordered).
    Object(__Map),
}

/// Insertion-ordered string-keyed map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct __Map {
    entries: Vec<(String, __Value)>,
}

impl __Map {
    /// Empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends or replaces `key`.
    pub fn insert(&mut self, key: impl Into<String>, value: __Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Inserts `key` as the first entry (used for `#[serde(tag)]`).
    pub fn insert_front(&mut self, key: impl Into<String>, value: __Value) {
        self.entries.insert(0, (key.into(), value));
    }

    /// Looks up `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&__Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &__Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl __Value {
    /// Borrow as object map.
    #[must_use]
    pub fn as_object(&self) -> Option<&__Map> {
        match self {
            __Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<__Value>> {
        match self {
            __Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            __Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As u64 if a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            __Value::I64(x) if x >= 0 => Some(x as u64),
            __Value::U64(x) => Some(x),
            _ => None,
        }
    }

    /// As i64 if an in-range integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            __Value::I64(x) => Some(x),
            __Value::U64(x) => i64::try_from(x).ok(),
            _ => None,
        }
    }

    /// As f64 for any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            __Value::I64(x) => Some(x as f64),
            __Value::U64(x) => Some(x as f64),
            __Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// As bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            __Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this is null.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, __Value::Null)
    }

    /// Object/array member lookup (non-panicking; `Null` when absent).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&__Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Expect an object, with a type name for the error message.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if the value is not an object.
    pub fn __expect_object(&self, ty: &str) -> Result<&__Map, DeError> {
        self.as_object()
            .ok_or_else(|| DeError(format!("expected a JSON object for {ty}")))
    }
}

impl std::fmt::Display for __Value {
    /// Compact JSON, matching `serde_json::to_string` formatting.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            __Value::Null => f.write_str("null"),
            __Value::Bool(b) => write!(f, "{b}"),
            __Value::I64(i) => write!(f, "{i}"),
            __Value::U64(u) => write!(f, "{u}"),
            __Value::F64(x) => {
                if !x.is_finite() {
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() < 1e16 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            __Value::String(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\t' => f.write_str("\\t")?,
                        '\r' => f.write_str("\\r")?,
                        '\u{8}' => f.write_str("\\b")?,
                        '\u{c}' => f.write_str("\\f")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            __Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            __Value::Object(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", __Value::String(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

static NULL_VALUE: __Value = __Value::Null;

impl std::ops::Index<&str> for __Value {
    type Output = __Value;
    fn index(&self, key: &str) -> &__Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for __Value {
    type Output = __Value;
    fn index(&self, idx: usize) -> &__Value {
        self.as_array()
            .and_then(|a| a.get(idx))
            .unwrap_or(&NULL_VALUE)
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that lower to the stub value tree.
pub trait Serialize {
    /// Lower `self` into a [`__Value`].
    fn __serde_to_value(&self) -> __Value;
}

/// Types that lift from the stub value tree.
pub trait Deserialize<'de>: Sized {
    /// Lift a value of `Self` out of `v`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] if the shape does not match.
    fn __serde_from_value(v: &__Value) -> Result<Self, DeError>;
}

/// Owned-deserializable marker, as in real serde.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// `de` module mirror for `serde::de::DeserializeOwned` imports.
pub mod de {
    pub use super::{DeError, DeserializeOwned};
}

/// Field fallback used by the derive: a missing field deserializes as if
/// it were `null` (so `Option` lifts to `None`), otherwise errors.
///
/// # Errors
///
/// Returns [`DeError`] naming the missing field.
pub fn __missing_field<T: DeserializeOwned>(name: &str) -> Result<T, DeError> {
    T::__serde_from_value(&__Value::Null).map_err(|_| DeError(format!("missing field `{name}`")))
}

// ---- primitive impls ----

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __serde_to_value(&self) -> __Value {
                let wide = *self as i128;
                if let Ok(x) = i64::try_from(wide) { __Value::I64(x) } else { __Value::U64(*self as u64) }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
                match *v {
                    __Value::I64(x) => <$t>::try_from(x).map_err(|_| DeError(format!("integer {x} out of range"))),
                    __Value::U64(x) => <$t>::try_from(x).map_err(|_| DeError(format!("integer {x} out of range"))),
                    _ => Err(DeError(concat!("expected integer for ", stringify!($t)).into())),
                }
            }
        }
    )*};
}
ser_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn __serde_to_value(&self) -> __Value {
                __Value::F64(f64::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| DeError(concat!("expected number for ", stringify!($t)).into()))
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn __serde_to_value(&self) -> __Value {
        __Value::Bool(*self)
    }
}
impl<'de> Deserialize<'de> for bool {
    fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError("expected bool".into()))
    }
}

impl Serialize for String {
    fn __serde_to_value(&self) -> __Value {
        __Value::String(self.clone())
    }
}
impl<'de> Deserialize<'de> for String {
    fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError("expected string".into()))
    }
}

impl Serialize for str {
    fn __serde_to_value(&self) -> __Value {
        __Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn __serde_to_value(&self) -> __Value {
        (**self).__serde_to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn __serde_to_value(&self) -> __Value {
        __Value::Array(self.iter().map(Serialize::__serde_to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn __serde_to_value(&self) -> __Value {
        self.as_slice().__serde_to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError("expected array".into()))?
            .iter()
            .map(T::__serde_from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn __serde_to_value(&self) -> __Value {
        self.as_slice().__serde_to_value()
    }
}
impl<'de, T: Deserialize<'de> + fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::__serde_from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError(format!("expected array of length {N}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn __serde_to_value(&self) -> __Value {
        match self {
            Some(x) => x.__serde_to_value(),
            None => __Value::Null,
        }
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
        match v {
            __Value::Null => Ok(None),
            other => T::__serde_from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn __serde_to_value(&self) -> __Value {
        (**self).__serde_to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
        T::__serde_from_value(v).map(Box::new)
    }
}

// "rc"-feature impls (the stub always provides them).
impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn __serde_to_value(&self) -> __Value {
        (**self).__serde_to_value()
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Arc<T> {
    fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
        T::__serde_from_value(v).map(Arc::new)
    }
}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Arc<[T]> {
    fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
        let items: Vec<T> = Deserialize::__serde_from_value(v)?;
        Ok(items.into())
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn __serde_to_value(&self) -> __Value {
                __Value::Array(vec![$(self.$n.__serde_to_value()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError("expected tuple array".into()))?;
                Ok(($($t::__serde_from_value(
                    a.get($n).ok_or_else(|| DeError("tuple too short".into()))?
                )?,)+))
            }
        }
    )*};
}
ser_de_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl<K: fmt::Display + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn __serde_to_value(&self) -> __Value {
        let mut m = __Map::new();
        for (k, v) in self {
            m.insert(k.to_string(), v.__serde_to_value());
        }
        __Value::Object(m)
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
        let map = v
            .as_object()
            .ok_or_else(|| DeError("expected object for map".into()))?;
        map.iter()
            .map(|(k, val)| Ok((k.clone(), V::__serde_from_value(val)?)))
            .collect()
    }
}

impl<K: fmt::Display, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn __serde_to_value(&self) -> __Value {
        let mut m = __Map::new();
        for (k, v) in self {
            m.insert(k.to_string(), v.__serde_to_value());
        }
        __Value::Object(m)
    }
}

impl Serialize for __Value {
    fn __serde_to_value(&self) -> __Value {
        self.clone()
    }
}
impl<'de> Deserialize<'de> for __Value {
    fn __serde_from_value(v: &__Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

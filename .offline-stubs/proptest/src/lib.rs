//! Offline API-compatible stand-in for `proptest` (subset).
//!
//! Implements the strategy combinators and macros this workspace uses as a
//! simple seeded random-case runner: every `proptest!` test runs its
//! configured number of cases with deterministic per-(test, case) seeds.
//! No shrinking — a failing case panics with the plain assert message.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// Strategy trait: deterministic seeded generation of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Keep only values passing `pred` (regenerates until one passes).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> FilterStrategy<Self, F>
    where
        Self: Sized,
    {
        FilterStrategy {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut StdRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct FilterStrategy<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 candidates: {}", self.whence);
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// Constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+)),*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

/// Collection strategies.
pub mod collection {
    use super::{Rng, StdRng, Strategy};

    /// A `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Rng, StdRng, Strategy};

    /// 50/50 `Some`/`None` over `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Union of same-valued strategies (the `prop_oneof!` backend).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Union<V> {
    /// Build from boxed alternatives.
    #[must_use]
    pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Self(alternatives)
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Test-runner plumbing used by the generated code.
pub mod test_runner {
    /// Run configuration (subset of proptest's).
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }

    /// Marker for a `prop_assume!` rejection (case silently skipped).
    #[derive(Debug)]
    pub struct Rejection;

    /// Deterministic per-(test, case) seed.
    #[must_use]
    pub fn case_seed(test_name: &str, case: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h.wrapping_add(case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Deterministic per-(test, case) RNG.
    #[must_use]
    pub fn rng_for(test_name: &str, case: u64) -> rand::rngs::StdRng {
        <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(case_seed(test_name, case))
    }
}

/// Prelude, as in real proptest.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Just,
        Strategy,
    };
}

/// Defines seeded random-case tests (stub of proptest's runner macro).
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                for __case in 0..u64::from(__config.cases) {
                    let mut __rng =
                        $crate::test_runner::rng_for(stringify!($name), __case);
                    let ( $($pat,)+ ) = (
                        $($crate::Strategy::generate(&($strat), &mut __rng),)+
                    );
                    let __outcome: ::std::result::Result<(), $crate::test_runner::Rejection> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    // A rejection (prop_assume!) just skips the case.
                    drop(__outcome);
                }
            }
        )*
    };
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Stub of proptest's `prop_assert!`: plain assert (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Stub of proptest's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Stub of proptest's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Stub of proptest's `prop_assume!`: reject the case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejection);
        }
    };
}

/// Stub of proptest's `prop_oneof!`: uniform union of alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

//! Offline API-compatible stand-in for `serde_json` (subset).
//!
//! Prints and parses the `serde` stub's value tree with serde_json-style
//! formatting: compact `to_string`, 2-space-indented `to_string_pretty`,
//! shortest-roundtrip-ish floats (integral floats keep a trailing `.0`).

use std::fmt;

pub use serde::__Map as Map;
pub use serde::__Value as Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self::new(e.0)
    }
}

/// Result alias, as in real serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes to compact JSON.
///
/// # Errors
///
/// Never fails in the stub (signature parity with serde_json).
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.__serde_to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty JSON (2-space indent).
///
/// # Errors
///
/// Never fails in the stub (signature parity with serde_json).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.__serde_to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::__serde_from_value(&value).map_err(Error::from)
}

/// Converts any serializable value into a [`Value`] (used by `json!`).
#[must_use]
pub fn __to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.__serde_to_value()
}

// ---- printer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e16 {
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid token at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

// ---- json! macro ----

/// Builds a [`Value`] from JSON-like syntax (subset of serde_json's).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        let mut __items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_inner!(__items; $($tt)*);
        $crate::Value::Array(__items)
    }};
    ({ $($tt:tt)* }) => {{
        let mut __m = $crate::Map::new();
        $crate::json_object_inner!(__m; $($tt)*);
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { $crate::__to_value(&$other) };
}

/// Internal muncher for `json!` object bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_inner {
    ($m:ident;) => {};
    ($m:ident; ,) => {};
    ($m:ident; $key:literal : null $(, $($rest:tt)*)?) => {
        $m.insert($key, $crate::Value::Null);
        $crate::json_object_inner!($m; $($($rest)*)?);
    };
    ($m:ident; $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $m.insert($key, $crate::json!({ $($inner)* }));
        $crate::json_object_inner!($m; $($($rest)*)?);
    };
    ($m:ident; $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $m.insert($key, $crate::json!([ $($inner)* ]));
        $crate::json_object_inner!($m; $($($rest)*)?);
    };
    ($m:ident; $key:literal : $val:expr , $($rest:tt)*) => {
        $m.insert($key, $crate::__to_value(&$val));
        $crate::json_object_inner!($m; $($rest)*);
    };
    ($m:ident; $key:literal : $val:expr) => {
        $m.insert($key, $crate::__to_value(&$val));
    };
}

/// Internal muncher for `json!` array bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_inner {
    ($items:ident;) => {};
    ($items:ident; ,) => {};
    ($items:ident; null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::json_array_inner!($items; $($($rest)*)?);
    };
    ($items:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_array_inner!($items; $($($rest)*)?);
    };
    ($items:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_array_inner!($items; $($($rest)*)?);
    };
    ($items:ident; $val:expr , $($rest:tt)*) => {
        $items.push($crate::__to_value(&$val));
        $crate::json_array_inner!($items; $($rest)*);
    };
    ($items:ident; $val:expr) => {
        $items.push($crate::__to_value(&$val));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = json!({"a": 1, "b": [1.5, true, null], "c": {"d": "x\"y"}});
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, r#"{"a":1,"b":[1.5,true,null],"c":{"d":"x\"y"}}"#);
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.875f64).unwrap(), "0.875");
        assert_eq!(to_string(&3u64).unwrap(), "3");
    }

    #[test]
    fn expressions_in_json_macro() {
        let x = 4;
        let v = json!({"sum": x + 1, "list": [x, x * 2]});
        assert_eq!(to_string(&v).unwrap(), r#"{"sum":5,"list":[4,8]}"#);
    }
}

#!/bin/sh
# Run cargo against the committed .offline-stubs crates when the crates-io
# registry is unreachable. Usage: .offline-stubs/cargo-offline.sh test -q
set -e
cd "$(dirname "$0")/.."
sub="$1"
shift
exec cargo "$sub" --offline \
  --config 'patch.crates-io.rand.path=".offline-stubs/rand"' \
  --config 'patch.crates-io.serde.path=".offline-stubs/serde"' \
  --config 'patch.crates-io.serde_derive.path=".offline-stubs/serde_derive"' \
  --config 'patch.crates-io.serde_json.path=".offline-stubs/serde_json"' \
  --config 'patch.crates-io.proptest.path=".offline-stubs/proptest"' \
  --config 'patch.crates-io.criterion.path=".offline-stubs/criterion"' \
  "$@"

//! Offline API-compatible stand-in for the `rand` crate (subset).
//!
//! Local development containers for this repo have no registry access, so
//! this stub mirrors the exact subset of the rand 0.8 API the workspace
//! uses. The RNG is a SplitMix64 counter generator: deterministic per seed
//! and statistically fine for the simulator's purposes, but the *values*
//! differ from the real `StdRng` (ChaCha12). Never commit artifacts
//! generated under this stub.

/// Core source of randomness: 64-bit outputs.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;
    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;
    /// Construct from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of a supported primitive type.
    fn gen<T: Generable>(&mut self) -> T {
        T::generate(self.next_u64())
    }

    /// A uniform draw from a half-open or inclusive range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types `Rng::gen` can produce.
pub trait Generable {
    /// Map one raw 64-bit draw to the type.
    fn generate(raw: u64) -> Self;
}

macro_rules! generable_int {
    ($($t:ty),*) => {$(
        impl Generable for $t {
            fn generate(raw: u64) -> Self { raw as $t }
        }
    )*};
}
generable_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Generable for bool {
    fn generate(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Generable for f64 {
    fn generate(raw: u64) -> Self {
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Generable for f32 {
    fn generate(raw: u64) -> Self {
        (raw >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Types with uniform range sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between(lo: Self, hi: Self, inclusive: bool, raw: u64) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_between(lo: Self, hi: Self, inclusive: bool, raw: u64) -> Self {
                let span = if inclusive {
                    (hi as i128 - lo as i128) + 1
                } else {
                    hi as i128 - lo as i128
                };
                assert!(span > 0, "empty range in gen_range");
                lo.wrapping_add((raw as i128).rem_euclid(span) as $t)
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(lo: Self, hi: Self, _inclusive: bool, raw: u64) -> Self {
                assert!(lo <= hi, "empty range in gen_range");
                let unit = (raw >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
sample_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng.next_u64())
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng.next_u64())
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Offline stand-in for rand's `StdRng`: SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut state = 0u64;
            for (i, b) in seed.iter().enumerate() {
                state ^= u64::from(*b) << ((i % 8) * 8);
            }
            Self { state }
        }

        fn seed_from_u64(state: u64) -> Self {
            Self {
                state: state.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x1234_5678_9abc_def0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&y));
            let z: u64 = r.gen_range(5..=5);
            assert_eq!(z, 5);
        }
    }
}

//! Offline stand-in for `serde_derive`: hand-rolled (syn-free) derives that
//! generate the simplified `__serde_to_value` / `__serde_from_value` impls
//! of the sibling `serde` stub. Supports the attribute subset this
//! workspace uses: `default`, `skip`, `skip_serializing_if`, `rename_all =
//! "snake_case"`, `tag = "..."`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

// ---- model ----

#[derive(Default, Clone)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all: Option<String>,
}

#[derive(Default, Clone)]
struct FieldAttrs {
    default: bool,
    skip: bool,
    skip_serializing_if: Option<String>,
}

#[derive(Clone)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(#[allow(dead_code)] usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Struct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (name, attrs, shape) = match parse_item(&tokens) {
        Ok(x) => x,
        Err(e) => return error(&e),
    };
    let code = if serialize {
        gen_serialize(&name, &attrs, &shape)
    } else {
        gen_deserialize(&name, &attrs, &shape)
    };
    match code.parse() {
        Ok(ts) => ts,
        Err(e) => error(&format!("stub serde_derive emitted bad code: {e}")),
    }
}

// ---- parsing ----

type ParseResult = Result<(String, ContainerAttrs, Shape), String>;

fn parse_item(tokens: &[TokenTree]) -> ParseResult {
    let mut i = 0;
    let mut container = ContainerAttrs::default();
    // Outer attributes.
    loop {
        let Some(tt) = tokens.get(i) else {
            return Err("unexpected end of derive input".into());
        };
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    read_serde_attr_group(g, |key, val| match (key, val) {
                        ("tag", Some(v)) => container.tag = Some(v.to_string()),
                        ("rename_all", Some(v)) => container.rename_all = Some(v.to_string()),
                        _ => {}
                    });
                    i += 2;
                } else {
                    return Err("malformed attribute".into());
                }
            }
            _ => break,
        }
    }
    // Visibility.
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other}")),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => return Err(format!("expected type name, got {other}")),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("stub serde_derive does not support generic types".into());
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(&g.stream().into_iter().collect::<Vec<_>>())?;
                Ok((name, container, Shape::Struct(fields)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_items(&g.stream().into_iter().collect::<Vec<_>>());
                Ok((name, container, Shape::TupleStruct(arity)))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Ok((name, container, Shape::UnitStruct))
            }
            other => Err(format!("unexpected struct body: {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(&g.stream().into_iter().collect::<Vec<_>>())?;
                Ok((name, container, Shape::Enum(variants)))
            }
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("expected struct or enum, got {other}")),
    }
}

/// If the bracketed attribute group is `serde(...)`, feed its `key` /
/// `key = "value"` directives to `sink`.
fn read_serde_attr_group(
    group: &proc_macro::Group,
    mut sink: impl FnMut(&str, Option<&str>),
) {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    let [TokenTree::Ident(head), TokenTree::Group(args)] = &inner[..] else {
        return;
    };
    if head.to_string() != "serde" || args.delimiter() != Delimiter::Parenthesis {
        return;
    }
    let parts: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < parts.len() {
        let TokenTree::Ident(key) = &parts[j] else {
            j += 1;
            continue;
        };
        let key = key.to_string();
        if matches!(parts.get(j + 1), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            if let Some(TokenTree::Literal(lit)) = parts.get(j + 2) {
                let raw = lit.to_string();
                let val = raw.trim_matches('"');
                sink(&key, Some(val));
            }
            j += 3;
        } else {
            sink(&key, None);
            j += 1;
        }
        // Skip the separating comma, if any.
        if matches!(parts.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            j += 1;
        }
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut attrs = FieldAttrs::default();
        // Field attributes.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                read_serde_attr_group(g, |key, val| match (key, val) {
                    ("default", None) => attrs.default = true,
                    ("skip", None) => attrs.skip = true,
                    ("skip_serializing_if", Some(v)) => {
                        attrs.skip_serializing_if = Some(v.to_string());
                    }
                    _ => {}
                });
                i += 2;
            } else {
                return Err("malformed field attribute".into());
            }
        }
        if i >= tokens.len() {
            break;
        }
        // Visibility.
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other}")),
        };
        i += 1;
        if !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        // Skip the type: advance to the next comma at angle-bracket depth 0.
        let mut angle: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, attrs });
    }
    Ok(fields)
}

fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Variant attributes (ignored beyond skipping).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let arity = count_top_level_items(&g.stream().into_iter().collect::<Vec<_>>());
                if arity == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(arity)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )?)
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

/// Number of comma-separated items at angle-depth 0 (tuple/variant arity).
fn count_top_level_items(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut angle: i32 = 0;
    let mut items = 1;
    for tt in tokens {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => items += 1,
            _ => {}
        }
    }
    items
}

fn rename(container: &ContainerAttrs, ident: &str) -> String {
    match container.rename_all.as_deref() {
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in ident.chars().enumerate() {
                if c.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(c.to_ascii_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        _ => ident.to_string(),
    }
}

// ---- codegen ----

fn gen_field_inserts(fields: &[Field], container: &ContainerAttrs, access: &str) -> String {
    let mut out = String::new();
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        let key = rename(container, &f.name);
        let expr = format!("{access}{}", f.name);
        let insert = format!(
            "__m.insert({key:?}, ::serde::Serialize::__serde_to_value(&{expr}));"
        );
        if let Some(pred) = &f.attrs.skip_serializing_if {
            out.push_str(&format!("if !({pred})(&{expr}) {{ {insert} }}\n"));
        } else {
            out.push_str(&insert);
            out.push('\n');
        }
    }
    out
}

fn gen_field_reads(fields: &[Field], container: &ContainerAttrs, map: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let key = rename(container, &f.name);
        if f.attrs.skip {
            out.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
            continue;
        }
        let fallback = if f.attrs.default {
            "::core::default::Default::default()".to_string()
        } else {
            format!("::serde::__missing_field({key:?})?")
        };
        out.push_str(&format!(
            "{}: match {map}.get({key:?}) {{ \
               ::core::option::Option::Some(__x) => ::serde::Deserialize::__serde_from_value(__x)?, \
               ::core::option::Option::None => {fallback}, \
             }},\n",
            f.name
        ));
    }
    out
}

fn gen_serialize(name: &str, container: &ContainerAttrs, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => format!(
            "let mut __m = ::serde::__Map::new();\n{}::serde::__Value::Object(__m)",
            gen_field_inserts(fields, container, "self.")
        ),
        Shape::TupleStruct(1) => {
            "::serde::Serialize::__serde_to_value(&self.0)".to_string()
        }
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::__serde_to_value(&self.{i})"))
                .collect();
            format!("::serde::__Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::__Value::Null".to_string(),
        Shape::Enum(variants) => gen_enum_serialize(name, container, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
           fn __serde_to_value(&self) -> ::serde::__Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, container: &ContainerAttrs, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = rename(container, &v.name);
        match (&v.kind, &container.tag) {
            (VariantKind::Unit, None) => arms.push_str(&format!(
                "{name}::{} => ::serde::__Value::String({vname:?}.to_string()),\n",
                v.name
            )),
            (VariantKind::Unit, Some(tag)) => arms.push_str(&format!(
                "{name}::{} => {{ let mut __m = ::serde::__Map::new(); \
                 __m.insert({tag:?}, ::serde::__Value::String({vname:?}.to_string())); \
                 ::serde::__Value::Object(__m) }},\n",
                v.name
            )),
            (VariantKind::Newtype, None) => arms.push_str(&format!(
                "{name}::{}(__inner) => {{ let mut __m = ::serde::__Map::new(); \
                 __m.insert({vname:?}, ::serde::Serialize::__serde_to_value(__inner)); \
                 ::serde::__Value::Object(__m) }},\n",
                v.name
            )),
            (VariantKind::Newtype, Some(tag)) => arms.push_str(&format!(
                "{name}::{}(__inner) => {{ \
                 match ::serde::Serialize::__serde_to_value(__inner) {{ \
                   ::serde::__Value::Object(mut __m) => {{ \
                     __m.insert_front({tag:?}, ::serde::__Value::String({vname:?}.to_string())); \
                     ::serde::__Value::Object(__m) }}, \
                   _ => panic!(\"internally tagged newtype variant must wrap a map\"), \
                 }} }},\n",
                v.name
            )),
            (VariantKind::Struct(fields), tag) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let inserts = gen_field_inserts(fields, container, "");
                let finish = match tag {
                    None => format!(
                        "let mut __outer = ::serde::__Map::new(); \
                         __outer.insert({vname:?}, ::serde::__Value::Object(__m)); \
                         ::serde::__Value::Object(__outer)"
                    ),
                    Some(tag) => format!(
                        "__m.insert_front({tag:?}, ::serde::__Value::String({vname:?}.to_string())); \
                         ::serde::__Value::Object(__m)"
                    ),
                };
                arms.push_str(&format!(
                    "{name}::{} {{ {} }} => {{ let mut __m = ::serde::__Map::new();\n{inserts}{finish} }},\n",
                    v.name,
                    binds.join(", ")
                ));
            }
            (VariantKind::Tuple(_), _) => arms.push_str(&format!(
                "{name}::{}(..) => panic!(\"stub serde_derive: tuple variants unsupported\"),\n",
                v.name
            )),
        }
    }
    format!("match self {{\n{arms}}}")
}

fn gen_deserialize(name: &str, container: &ContainerAttrs, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(fields) => format!(
            "let __m = __v.__expect_object({name:?})?;\n\
             ::core::result::Result::Ok({name} {{\n{}}})",
            gen_field_reads(fields, container, "__m")
        ),
        Shape::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::__serde_from_value(__v)?))"
        ),
        Shape::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::__serde_from_value(\
                         __a.get({i}).ok_or_else(|| ::serde::DeError(\"tuple too short\".into()))?)?"
                    )
                })
                .collect();
            format!(
                "let __a = __v.as_array().ok_or_else(|| ::serde::DeError(\"expected array\".into()))?;\n\
                 ::core::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::core::result::Result::Ok({name})"),
        Shape::Enum(variants) => gen_enum_deserialize(name, container, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
           fn __serde_from_value(__v: &::serde::__Value) -> ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, container: &ContainerAttrs, variants: &[Variant]) -> String {
    if let Some(tag) = &container.tag {
        let mut arms = String::new();
        for v in variants {
            let vname = rename(container, &v.name);
            match &v.kind {
                VariantKind::Unit => arms.push_str(&format!(
                    "{vname:?} => ::core::result::Result::Ok({name}::{}),\n",
                    v.name
                )),
                VariantKind::Newtype => arms.push_str(&format!(
                    "{vname:?} => ::core::result::Result::Ok({name}::{}(\
                     ::serde::Deserialize::__serde_from_value(__v)?)),\n",
                    v.name
                )),
                VariantKind::Struct(fields) => arms.push_str(&format!(
                    "{vname:?} => ::core::result::Result::Ok({name}::{} {{\n{}}}),\n",
                    v.name,
                    gen_field_reads(fields, container, "__m")
                )),
                VariantKind::Tuple(_) => arms.push_str(&format!(
                    "{vname:?} => ::core::result::Result::Err(::serde::DeError(\
                     \"stub serde_derive: tuple variants unsupported\".into())),\n"
                )),
            }
        }
        return format!(
            "let __m = __v.__expect_object({name:?})?;\n\
             let __tag = __m.get({tag:?}).and_then(::serde::__Value::as_str)\
                 .ok_or_else(|| ::serde::DeError(format!(\"missing tag `{{}}`\", {tag:?})))?;\n\
             match __tag {{\n{arms}\
               __other => ::core::result::Result::Err(::serde::DeError(\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n\
             }}"
        );
    }
    // Externally tagged (serde default).
    let mut str_arms = String::new();
    let mut map_arms = String::new();
    for v in variants {
        let vname = rename(container, &v.name);
        match &v.kind {
            VariantKind::Unit => str_arms.push_str(&format!(
                "{vname:?} => ::core::result::Result::Ok({name}::{}),\n",
                v.name
            )),
            VariantKind::Newtype => map_arms.push_str(&format!(
                "{vname:?} => ::core::result::Result::Ok({name}::{}(\
                 ::serde::Deserialize::__serde_from_value(__inner)?)),\n",
                v.name
            )),
            VariantKind::Struct(fields) => map_arms.push_str(&format!(
                "{vname:?} => {{ let __m = __inner.__expect_object({name:?})?; \
                 ::core::result::Result::Ok({name}::{} {{\n{}}}) }},\n",
                v.name,
                gen_field_reads(fields, container, "__m")
            )),
            VariantKind::Tuple(_) => map_arms.push_str(&format!(
                "{vname:?} => ::core::result::Result::Err(::serde::DeError(\
                 \"stub serde_derive: tuple variants unsupported\".into())),\n"
            )),
        }
    }
    format!(
        "match __v {{\n\
           ::serde::__Value::String(__s) => match __s.as_str() {{\n{str_arms}\
             __other => ::core::result::Result::Err(::serde::DeError(\
               format!(\"unknown {name} variant `{{__other}}`\"))),\n\
           }},\n\
           ::serde::__Value::Object(__map) => {{\n\
             let (__k, __inner) = __map.iter().next()\
               .ok_or_else(|| ::serde::DeError(\"empty enum object\".into()))?;\n\
             match __k.as_str() {{\n{map_arms}\
               __other => ::core::result::Result::Err(::serde::DeError(\
                 format!(\"unknown {name} variant `{{__other}}`\"))),\n\
             }}\n\
           }},\n\
           _ => ::core::result::Result::Err(::serde::DeError(\
             \"expected string or object for enum\".into())),\n\
         }}"
    )
}

//! Offline API-compatible stand-in for `criterion` (subset).
//!
//! Runs each registered benchmark closure a handful of times and reports
//! wall-clock means to stderr. No statistics, warm-up, or HTML reports —
//! just enough to compile and smoke-run the workspace benches offline.

use std::time::Instant;

const STUB_ITERS: u32 = 3;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _crit: self,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(&id.into(), &mut f);
    }
}

/// A named group of benchmarks (settings are accepted and ignored).
pub struct BenchmarkGroup<'a> {
    name: String,
    _crit: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, &mut f);
    }

    /// Finish the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher { elapsed_ns: 0 };
    let wall = Instant::now();
    f(&mut b);
    eprintln!(
        "bench {id}: ~{} ns/iter (stub, {} iters, wall {:?})",
        b.elapsed_ns / u128::from(STUB_ITERS.max(1)),
        STUB_ITERS,
        wall.elapsed()
    );
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..STUB_ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
    }

    /// Time `routine` with per-iteration inputs from `setup`.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        for _ in 0..STUB_ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed_ns += start.elapsed().as_nanos();
        }
    }
}

/// Input-size hint for `iter_batched` (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Registers a group-runner function over benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the registered groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
